"""Trace-context propagation across executors and the remote transport.

The engine stamps each ``ShardSpec`` with a tiny picklable
:class:`TraceContext` (trace id + the plan span's id).  How the shard's
observability data gets home depends on where the shard runs:

- **Same process, same trace** (serial and thread executors): the shard's
  ``exec.shard`` span records directly into the live tracer, parented to the
  plan span.
- **Another process** (process pool and remote fleet workers): the shard runs
  under a temporary thread-local tracer and a shard-local metrics registry;
  both snapshots ride back in ``ShardResult.obs`` — the same envelope
  pattern ``ConditionCache`` snapshots use — and
  :func:`merge_shard_envelopes` folds them into the parent timeline.

Everything here is a no-op (and never imported by the hot path) when the
shard carries no trace context.
"""

from __future__ import annotations

import os
import socket
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


@dataclass(frozen=True)
class TraceContext:
    """The cross-process handle a shard carries: ~100 bytes pickled.

    ``pid`` records the tracing process: a fork-started pool worker inherits
    the parent's enabled tracer (same trace id!), so trace-id equality alone
    cannot distinguish "same process" from "forked copy" — the pid can.
    """

    trace_id: str
    parent_id: Optional[str] = None
    pid: int = 0


def current_context() -> Optional[TraceContext]:
    """The context shards should inherit, or ``None`` when tracing is off."""
    tracer = _trace.active_tracer()
    if tracer is None:
        return None
    return TraceContext(tracer.trace_id, _trace.current_span_id(),
                        os.getpid())


@contextmanager
def plan_scope(plan: Any, executor_name: str,
               workers: Optional[int]) -> Iterator[Optional[TraceContext]]:
    """Wrap a ``run_plan`` call in an ``exec.plan`` span.

    Yields the :class:`TraceContext` to stamp onto shards, or ``None`` when
    tracing is disabled (in which case this is a bare ``yield``).
    """
    tracer = _trace.active_tracer()
    if tracer is None:
        yield None
        return
    task_name = getattr(plan.task, "__name__", type(plan.task).__name__)
    with _trace.span("exec.plan", task=task_name,
                     units=plan.num_units, executor=executor_name,
                     workers=workers) as handle:
        yield TraceContext(tracer.trace_id, handle.span_id, os.getpid())


class _ShardObs:
    """Mutable box ``observe_shard`` fills with the outbound envelope."""

    __slots__ = ("envelope",)

    def __init__(self) -> None:
        self.envelope: Optional[Dict[str, Any]] = None


@contextmanager
def _shard_profiler() -> Iterator[None]:
    """Enable kernel profiling for an envelope-mode shard, if the NN backend
    is loaded and not already profiled (workers have no global tracer, so
    nothing else installs the profiler for them)."""
    backend_mod = sys.modules.get("repro.nn.backend")
    if backend_mod is None or backend_mod.KERNEL_PROFILER is not None:
        yield
        return
    previous = backend_mod.set_kernel_profiler(_trace.KernelProfiler())
    try:
        yield
    finally:
        backend_mod.set_kernel_profiler(previous)


@contextmanager
def observe_shard(spec: Any) -> Iterator[_ShardObs]:
    """Record one shard's spans/metrics, direct or enveloped (see module
    docstring).  ``spec.trace`` must be a :class:`TraceContext`."""
    box = _ShardObs()
    ctx = spec.trace
    attrs = dict(shard=spec.index, start=spec.start, units=len(spec.units))
    tracer = _trace.active_tracer()
    if tracer is not None and tracer.trace_id == ctx.trace_id \
            and os.getpid() == ctx.pid:
        with _trace.span("exec.shard", parent=ctx.parent_id, **attrs):
            yield box
        return
    local = _trace.Tracer(trace_id=ctx.trace_id)
    registry = _metrics.MetricsRegistry()
    with _trace.use_tracer(local), _metrics.use_registry(registry), \
            _shard_profiler():
        with _trace.span("exec.shard", parent=ctx.parent_id, **attrs):
            yield box
    box.envelope = {
        "spans": local.records,
        "metrics": registry.snapshot(),
        "worker": {"pid": os.getpid(), "host": socket.gethostname()},
    }


def merge_shard_envelopes(results: Iterable[Any]) -> None:
    """Fold worker-side envelopes from ``ShardResult.obs`` into the parent
    tracer and process registry.  Call only for results that won (the remote
    scheduler adopts straggler-dedup losers separately, marked abandoned,
    and never merges their metrics)."""
    tracer = _trace.active_tracer()
    registry = _metrics.get_registry()
    for result in results:
        envelope = getattr(result, "obs", None)
        if not envelope:
            continue
        if tracer is not None:
            tracer.adopt(envelope.get("spans", ()))
        registry.merge_snapshot(envelope.get("metrics", {}))


def adopt_abandoned(envelope: Optional[Dict[str, Any]],
                    **event_attrs: Any) -> None:
    """Adopt a discarded shard attempt's spans, marked ``abandoned``.

    Used by the remote scheduler when straggler dedup drops a duplicate
    result: the duplicate's timeline is kept as evidence, but its metrics are
    deliberately *not* merged, so merged metric totals count every unit
    exactly once.
    """
    tracer = _trace.active_tracer()
    if tracer is None or not envelope:
        return
    tracer.adopt(envelope.get("spans", ()), abandoned=True)


def record_fleet_stats(stats: Dict[str, int],
                       transport_totals: Optional[Dict[str, int]] = None,
                       ) -> None:
    """Publish remote-scheduler counters (and transport byte totals) into the
    process registry, but only while tracing — disabled runs keep the
    zero-cost contract and `RemoteExecutor.last_run_stats` unchanged."""
    if not _trace.is_enabled():
        return
    registry = _metrics.get_registry()
    for key, value in stats.items():
        registry.counter(f"exec.fleet.{key}").inc(int(value))
    for key, value in (transport_totals or {}).items():
        registry.counter(f"exec.transport.{key}").inc(int(value))


def record_fleet_size(size: int) -> None:
    """Publish the current fleet size as the ``exec.fleet.size`` gauge.

    The gauge holds the *peak* concurrent fleet — the number grow/shrink
    telemetry cares about — so a regrowth after deaths never lowers it.
    Only recorded while tracing (the zero-cost contract).
    """
    if not _trace.is_enabled():
        return
    gauge = _metrics.get_registry().gauge("exec.fleet.size")
    gauge.merge({"value": int(size)})
