"""Process-wide metrics registry: counters, gauges and histograms.

This is the unified stats surface for the whole stack.  Before this module
existed every subsystem grew its own ad-hoc dict — ``ArrayBackend.
fusion_counters``, ``BufferArena.stats()``, ``ConditionCache.stats()``,
``KernelCache.stats()``, ``RemoteExecutor.last_run_stats`` — with no way to
merge them across shards or ship them across the remote transport.  The
registry keeps the hot paths untouched (backends still bump plain dict
counters) and unifies at the read side: :func:`backend_registry` publishes a
backend's counters under canonical ``nn.*`` metric names, and anything that
used to read a bespoke dict now reads the registry snapshot.

Merge semantics (used when worker-side snapshots ride back in the shard
result envelope, exactly like ``ConditionCache`` snapshots):

- counters add,
- gauges take the max (they model high-water marks like arena peak bytes),
- histograms combine count/total/min/max.

Snapshots are plain dicts of plain scalars so they pickle small and survive
the remote transport unchanged.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional


class Counter:
    """A monotonically increasing sum.  Merges by addition."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        with self._lock:
            self.value += snapshot.get("value", 0)


class Gauge:
    """A point-in-time value.  Merges by max (models high-water marks)."""

    kind = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def set(self, value: Any) -> None:
        with self._lock:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        other = snapshot.get("value", 0)
        with self._lock:
            if other > self.value:
                self.value = other


class Histogram:
    """Streaming count/total/min/max over observed values (e.g. seconds)."""

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "histogram", "count": self.count, "total": self.total,
                "min": self.min, "max": self.max}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        with self._lock:
            self.count += snapshot.get("count", 0)
            self.total += snapshot.get("total", 0.0)
            for key, pick in (("min", min), ("max", max)):
                other = snapshot.get(key)
                if other is None:
                    continue
                mine = getattr(self, key)
                setattr(self, key, other if mine is None else pick(mine, other))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, threading.Lock())
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict snapshot, picklable and JSON-serializable."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.snapshot() for metric in metrics}

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold another registry's snapshot into this one (shard merge)."""
        for name, entry in snapshot.items():
            cls = _KINDS.get(entry.get("type"))
            if cls is None:
                continue
            self._get(name, cls).merge(entry)

    def totals(self) -> Dict[str, Any]:
        """Flat ``{name: scalar}`` view: counter/gauge values, histogram
        totals (the cumulative-time number reports sort by)."""
        flat: Dict[str, Any] = {}
        for name, entry in self.snapshot().items():
            flat[name] = entry["total"] if entry["type"] == "histogram" \
                else entry["value"]
        return flat

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


_PROCESS_REGISTRY = MetricsRegistry()
_ACTIVE = threading.local()


def process_registry() -> MetricsRegistry:
    """The registry owned by this process (the merge target for shards)."""
    return _PROCESS_REGISTRY


def get_registry() -> MetricsRegistry:
    """The registry active on this thread.

    Normally the process registry; inside a worker-side shard observation a
    thread-local shard registry is installed so the shard's metrics can ride
    back in the result envelope and merge into the parent, exactly like
    ``ConditionCache`` snapshots.
    """
    override = getattr(_ACTIVE, "registry", None)
    return override if override is not None else _PROCESS_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as this thread's active registry."""
    previous = getattr(_ACTIVE, "registry", None)
    _ACTIVE.registry = registry
    try:
        yield registry
    finally:
        _ACTIVE.registry = previous


def backend_registry(backend: Any,
                     registry: Optional[MetricsRegistry] = None,
                     ) -> MetricsRegistry:
    """Publish an ``ArrayBackend``'s ad-hoc counters as registry metrics.

    This is the unification seam for the legacy stats surfaces: fusion
    counters land under ``nn.fusion.*``, arena traffic under ``nn.arena.*``
    and compiled-backend state under ``nn.cjit.*``.  ``python -m
    repro.nn.backend --stats``, ``ArrayBackend.fusion_stats()`` and the
    benchmarks all read through this instead of bespoke per-backend dicts.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for key, value in getattr(backend, "fusion_counters", {}).items():
        registry.gauge(f"nn.fusion.{key}").set(int(value))
    arena = getattr(backend, "arena", None)
    if arena is not None and hasattr(arena, "stats"):
        for key, value in arena.stats().items():
            registry.gauge(f"nn.arena.{key}").set(int(value))
    for attr in ("compiled", "fallbacks"):
        value = getattr(backend, attr, None)
        if isinstance(value, int):
            registry.gauge(f"nn.cjit.{attr}").set(value)
    cache = getattr(backend, "cache", None)
    if cache is not None and hasattr(cache, "stats"):
        for key, value in cache.stats().items():
            if isinstance(value, (int, float)):
                registry.gauge(f"nn.cjit.cache.{key}").set(value)
    return registry


def cache_registry(cache: Any, prefix: str = "channel.cache",
                   registry: Optional[MetricsRegistry] = None,
                   ) -> MetricsRegistry:
    """Publish a ``ConditionCache``-style ``stats()`` dict as gauges."""
    registry = registry if registry is not None else MetricsRegistry()
    for key, value in cache.stats().items():
        if isinstance(value, (int, float)):
            registry.gauge(f"{prefix}.{key}").set(value)
    return registry
