"""Trace summarization and Chrome-trace export.

Consumes the record stream defined in :mod:`repro.obs.sink` and produces:

- :func:`summarize` — per-span-name phase breakdown, the shard timeline
  (with retry/straggler/dedup events and abandoned attempts), merged metric
  totals and the top-N kernels by cumulative time;
- :func:`format_summary` — the human layout ``python -m repro.obs
  summarize`` prints;
- :func:`chrome_trace` — a ``chrome://tracing`` / Perfetto-loadable JSON
  object (complete ``"X"`` events for spans, instant ``"i"`` events for
  scheduler facts).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.obs.metrics import MetricsRegistry


def summarize(records: Iterable[Dict[str, Any]],
              top_kernels: int = 10) -> Dict[str, Any]:
    spans: Dict[str, Dict[str, Any]] = {}
    shards: List[Dict[str, Any]] = []
    events: Dict[str, int] = {}
    event_list: List[Dict[str, Any]] = []
    pids = set()
    registry = MetricsRegistry()
    meta: Dict[str, Any] = {}

    for record in records:
        kind = record.get("type")
        if kind == "meta" and not meta:
            meta = record
        elif kind == "span":
            pids.add(record.get("pid"))
            name = record.get("name", "?")
            agg = spans.setdefault(
                name, {"count": 0, "total": 0.0, "max": 0.0, "errors": 0,
                       "abandoned": 0})
            duration = float(record.get("dur", 0.0))
            agg["count"] += 1
            agg["total"] += duration
            agg["max"] = max(agg["max"], duration)
            if record.get("error"):
                agg["errors"] += 1
            if record.get("abandoned"):
                agg["abandoned"] += 1
            if name == "exec.shard":
                attrs = record.get("attrs", {})
                shards.append({
                    "shard": attrs.get("shard"),
                    "units": attrs.get("units"),
                    "pid": record.get("pid"),
                    "t0": record.get("t0"),
                    "dur": duration,
                    "abandoned": bool(record.get("abandoned")),
                })
        elif kind == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
            event_list.append(record)
        elif kind == "metrics":
            registry.merge_snapshot(record.get("snapshot", {}))

    shards.sort(key=lambda entry: (entry["t0"] or 0.0, entry["shard"] or 0))
    snapshot = registry.snapshot()
    kernels = sorted(
        ({"kernel": name[len("nn.kernel."):],
          "calls": entry["count"],
          "total_s": entry["total"],
          "max_s": entry["max"]}
         for name, entry in snapshot.items()
         if name.startswith("nn.kernel.") and entry["type"] == "histogram"),
        key=lambda item: -item["total_s"])

    return {
        "trace": meta.get("trace"),
        "pids": sorted(pid for pid in pids if pid is not None),
        "spans": {name: spans[name] for name in sorted(spans)},
        "shards": shards,
        "events": events,
        "event_detail": event_list,
        "metrics": snapshot,
        "kernels": kernels[:top_kernels],
    }


def trace_summary_block(records: Iterable[Dict[str, Any]],
                        top_kernels: int = 5) -> Dict[str, Any]:
    """Compact self-profile block benchmarks attach to pipeline.json entries:
    phase breakdown + top kernels, no per-shard detail."""
    summary = summarize(records, top_kernels=top_kernels)
    return {
        "trace": summary["trace"],
        "phases": {name: {"count": agg["count"],
                          "total_s": round(agg["total"], 6)}
                   for name, agg in summary["spans"].items()},
        "events": summary["events"],
        "top_kernels": [{"kernel": k["kernel"], "calls": k["calls"],
                         "total_s": round(k["total_s"], 6)}
                        for k in summary["kernels"]],
    }


def format_summary(summary: Dict[str, Any]) -> str:
    lines = [f"trace {summary.get('trace')}: "
             f"{len(summary['shards'])} shard span(s) across "
             f"{len(summary['pids'])} process(es)"]

    lines.append("")
    lines.append("per-phase breakdown (by span name):")
    lines.append(f"  {'span':<28} {'count':>6} {'total_s':>10} {'max_s':>10}")
    for name, agg in summary["spans"].items():
        suffix = ""
        if agg["errors"]:
            suffix += f"  errors={agg['errors']}"
        if agg["abandoned"]:
            suffix += f"  abandoned={agg['abandoned']}"
        lines.append(f"  {name:<28} {agg['count']:>6} {agg['total']:>10.4f} "
                     f"{agg['max']:>10.4f}{suffix}")

    if summary["shards"]:
        origin = min(entry["t0"] for entry in summary["shards"])
        lines.append("")
        lines.append("shard timeline:")
        for entry in summary["shards"]:
            flag = "  [abandoned]" if entry["abandoned"] else ""
            lines.append(
                f"  shard {entry['shard']!s:>4}  pid {entry['pid']}  "
                f"+{entry['t0'] - origin:7.3f}s  {entry['dur']:8.4f}s  "
                f"{entry['units']} unit(s){flag}")

    if summary["events"]:
        lines.append("")
        lines.append("scheduler events: " + ", ".join(
            f"{name}={count}" for name, count in sorted(
                summary["events"].items())))

    if summary["kernels"]:
        lines.append("")
        lines.append("top kernels by cumulative time:")
        for entry in summary["kernels"]:
            lines.append(f"  {entry['kernel']:<28} {entry['calls']:>7} calls "
                         f"{entry['total_s']:>10.4f}s total "
                         f"{entry['max_s']:>9.5f}s max")

    fleet = {name: value for name, value in summary["metrics"].items()
             if name.startswith(("exec.fleet.", "exec.transport."))}
    if fleet:
        lines.append("")
        lines.append("fleet counters: " + ", ".join(
            f"{name.split('.', 1)[1]}={entry['value']}"
            for name, entry in sorted(fleet.items())))
    return "\n".join(lines)


def chrome_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Export to the Chrome Trace Event JSON format (``chrome://tracing``)."""
    records = list(records)
    origins = [r["t0"] for r in records if r.get("type") == "span"]
    origins += [r["ts"] for r in records if r.get("type") == "event"]
    origin = min(origins) if origins else 0.0

    trace_events: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "span":
            args = dict(record.get("attrs", {}))
            if record.get("error"):
                args["error"] = record["error"]
            if record.get("abandoned"):
                args["abandoned"] = True
            trace_events.append({
                "name": record["name"],
                "ph": "X",
                "ts": (record["t0"] - origin) * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": record["pid"],
                "tid": record.get("tid", 0),
                "cat": "abandoned" if record.get("abandoned") else "span",
                "args": args,
            })
        elif kind == "event":
            trace_events.append({
                "name": record["name"],
                "ph": "i",
                "s": "g",
                "ts": (record["ts"] - origin) * 1e6,
                "pid": record["pid"],
                "tid": 0,
                "cat": "event",
                "args": dict(record.get("attrs", {})),
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
