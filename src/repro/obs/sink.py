"""JSON-lines trace sink and the trace-record schema.

One trace file is a stream of independent JSON objects, one per line, in
emission order.  Four record types exist; the schema below is what the
``python -m repro.obs validate`` command (and the CI ``obs-smoke`` job)
checks:

``meta``
    ``{"type": "meta", "trace", "t0", "pid", "argv"}`` — one per tracer.
``span``
    ``{"type": "span", "trace", "span", "parent", "name", "t0", "dur",
    "pid", "tid"}`` plus optional ``attrs`` (dict), ``error`` (exception
    class name) and ``abandoned`` (bool, straggler-dedup losers).
``event``
    ``{"type": "event", "trace", "name", "ts", "pid"}`` plus optional
    ``parent``/``attrs`` — instantaneous scheduler facts (retries,
    speculation, dedup, worker deaths).
``metrics``
    ``{"type": "metrics", "trace", "scope", "pid", "snapshot"}`` where
    ``snapshot`` maps metric names to the plain-dict snapshots produced by
    :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterator, List, Tuple

# type -> (required field -> allowed value types)
TRACE_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "meta": {"trace": (str,), "t0": (int, float), "pid": (int,),
             "argv": (list,)},
    "span": {"trace": (str,), "span": (str,), "name": (str,),
             "t0": (int, float), "dur": (int, float), "pid": (int,),
             "tid": (int,)},
    "event": {"trace": (str,), "name": (str,), "ts": (int, float),
              "pid": (int,)},
    "metrics": {"trace": (str,), "scope": (str,), "pid": (int,),
                "snapshot": (dict,)},
}

_METRIC_TYPES = {"counter", "gauge", "histogram"}


class JsonlSink:
    """Thread-safe append-only JSONL writer, flushed per record so a dying
    process still leaves complete lines behind."""

    def __init__(self, path: Any) -> None:
        self.path = path
        self._file = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


def validate_record(record: Any) -> List[str]:
    """Schema errors for one record (empty list == valid)."""
    if not isinstance(record, dict):
        return ["record is not an object"]
    kind = record.get("type")
    schema = TRACE_SCHEMA.get(kind)
    if schema is None:
        return [f"unknown record type {kind!r}"]
    errors = []
    for field, types in schema.items():
        if field not in record:
            errors.append(f"{kind}: missing field {field!r}")
        elif not isinstance(record[field], types):
            errors.append(
                f"{kind}: field {field!r} has type "
                f"{type(record[field]).__name__}")
    if kind == "metrics":
        for name, entry in record.get("snapshot", {}).items():
            if not isinstance(entry, dict) \
                    or entry.get("type") not in _METRIC_TYPES:
                errors.append(f"metrics: bad snapshot entry {name!r}")
    return errors


def iter_trace(path: Any) -> Iterator[Dict[str, Any]]:
    """Yield records from a trace file, raising on malformed JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path: Any) -> List[Dict[str, Any]]:
    return list(iter_trace(path))


def validate_trace(path: Any) -> Tuple[int, List[str]]:
    """Validate a whole file; returns ``(record_count, errors)``."""
    count = 0
    errors: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                errors.append(f"line {lineno}: invalid JSON ({error})")
                continue
            errors.extend(f"line {lineno}: {msg}"
                          for msg in validate_record(record))
    return count, errors
