"""Span-based tracing with near-zero disabled cost.

Design constraints, in priority order:

1. **Disabled cost ~0.**  ``span(...)`` with tracing off performs one module
   global load, one ``None`` check and returns a shared no-op singleton whose
   ``__enter__``/``__exit__`` do nothing.  No allocation, no locks, no time
   reads.  A tier-1 test pins this (bulk no-op spans stay cheap, and the
   singleton identity is asserted so a regression to per-call allocation
   fails loudly).
2. **Cross-process mergeable.**  Spans are plain dict records carrying a
   ``trace`` id, a ``span`` id and a ``parent`` id.  A worker process records
   into a local :class:`Tracer` whose records ride back in the shard result
   envelope and are adopted into the parent tracer — same pattern as
   ``ConditionCache`` snapshot merging.
3. **Kernel profiling is opt-in and sampled.**  The NN backends carry a
   module-global profiler slot (``repro.nn.backend.KERNEL_PROFILER``); when
   tracing is enabled a :class:`KernelProfiler` is installed there and
   per-kernel wall times land in ``nn.kernel.*`` histograms of the active
   metrics registry.  When disabled the hook is a single ``None`` check on
   the kernel hot path.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs import metrics as _metrics

_SPAN_COUNTER = itertools.count(1)
_TRACE_COUNTER = itertools.count(1)

# Name of the most recently entered real span in this process; shipped in
# worker error diagnostics so a retry-exhaustion note can say where the
# worker died.
_LAST_SPAN: Optional[str] = None


def _new_trace_id() -> str:
    return f"t{os.getpid():x}-{time.time_ns():x}-{next(_TRACE_COUNTER)}"


class Tracer:
    """Collects span/event records, optionally streaming them to a sink."""

    def __init__(self, trace_id: Optional[str] = None, sink: Any = None,
                 keep_records: bool = True) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.sink = sink
        self.keep_records = keep_records
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def new_span_id(self) -> str:
        return f"{os.getpid():x}-{next(_SPAN_COUNTER)}"

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self.keep_records:
                self.records.append(record)
            if self.sink is not None:
                self.sink.write(record)

    def adopt(self, records: Iterable[Dict[str, Any]],
              abandoned: bool = False) -> None:
        """Merge records produced by a worker-side tracer into this one.

        ``abandoned=True`` marks spans from a shard attempt whose result was
        discarded (straggler-dedup loser): the timeline keeps the evidence,
        but reports can tell it apart from the work that produced the output.
        """
        for record in records:
            if abandoned:
                record = dict(record)
                record["abandoned"] = True
            self.emit(record)


# Active tracer: one per process (``_TRACER``), with a thread-local override
# used by worker-side shard observation so a shard collects only its own
# records even when the process-global tracer is off.
_TRACER: Optional[Tracer] = None
_LOCAL = threading.local()
_STACK = threading.local()


def active_tracer() -> Optional[Tracer]:
    override = getattr(_LOCAL, "tracer", None)
    return override if override is not None else _TRACER


def is_enabled() -> bool:
    return active_tracer() is not None


def last_span_name() -> Optional[str]:
    return _LAST_SPAN


def current_span_id() -> Optional[str]:
    stack = getattr(_STACK, "spans", None)
    return stack[-1][0] if stack else None


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as this thread's active tracer."""
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = tracer
    try:
        yield tracer
    finally:
        _LOCAL.tracer = previous


class _NoopSpan:
    """Shared do-nothing span handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "span_id",
                 "_t0_wall", "_t0_perf")

    def __init__(self, tracer: Tracer, name: str, parent: Optional[str],
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self.span_id = ""
        self._t0_wall = 0.0
        self._t0_perf = 0.0

    def __enter__(self) -> "_SpanHandle":
        global _LAST_SPAN
        self.span_id = self._tracer.new_span_id()
        if self._parent is None:
            self._parent = current_span_id()
        stack = getattr(_STACK, "spans", None)
        if stack is None:
            stack = _STACK.spans = []
        stack.append((self.span_id, self._name))
        _LAST_SPAN = self._name
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> None:
        self._attrs.update(attrs)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._t0_perf
        stack = getattr(_STACK, "spans", None)
        if stack and stack[-1][0] == self.span_id:
            stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "trace": self._tracer.trace_id,
            "span": self.span_id,
            "parent": self._parent,
            "name": self._name,
            "t0": self._t0_wall,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self._attrs:
            record["attrs"] = self._attrs
        self._tracer.emit(record)
        return False


def span(name: str, *, parent: Optional[str] = None, **attrs: Any):
    """Open a span.  Returns the shared no-op handle when tracing is off."""
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is None:
        tracer = _TRACER
        if tracer is None:
            return NOOP_SPAN
    return _SpanHandle(tracer, name, parent, attrs)


def event(name: str, *, parent: Optional[str] = None, **attrs: Any) -> None:
    """Record an instantaneous event (retry, dedup, worker death, ...)."""
    tracer = active_tracer()
    if tracer is None:
        return
    record: Dict[str, Any] = {
        "type": "event",
        "trace": tracer.trace_id,
        "name": name,
        "ts": time.time(),
        "pid": os.getpid(),
        "parent": parent if parent is not None else current_span_id(),
    }
    if attrs:
        record["attrs"] = attrs
    tracer.emit(record)


class KernelProfiler:
    """Times kernel calls into ``nn.kernel.*`` histograms.

    Installed into ``repro.nn.backend.KERNEL_PROFILER`` while profiling is
    enabled; the backend hot-path hook is ``profiler is None`` when off.
    Re-entrant kernel calls (a cjit fallback invoking the numpy base
    implementation) are counted once: only the outermost timed region
    records, tracked with a per-thread depth flag.  ``sample_every=N``
    records every Nth outermost call to bound enabled-mode overhead.
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.sample_every = max(1, int(sample_every))
        self._local = threading.local()

    def enter(self) -> Optional[float]:
        local = self._local
        if getattr(local, "depth", 0):
            return None
        if self.sample_every > 1:
            tick = getattr(local, "tick", 0) + 1
            local.tick = tick
            if tick % self.sample_every:
                return None
        local.depth = 1
        return time.perf_counter()

    def exit(self, name: str, token: float) -> None:
        duration = time.perf_counter() - token
        self._local.depth = 0
        _metrics.get_registry().observe(f"nn.kernel.{name}", duration)

    def phase_enter(self) -> Optional[float]:
        """Like :meth:`enter` but on a separate depth channel, used for
        coarse phases (lazy realize barriers) that *contain* kernel calls."""
        local = self._local
        if getattr(local, "phase_depth", 0):
            return None
        local.phase_depth = 1
        return time.perf_counter()

    def phase_exit(self, name: str, token: float) -> None:
        duration = time.perf_counter() - token
        self._local.phase_depth = 0
        _metrics.get_registry().observe(f"nn.phase.{name}", duration)


def _set_backend_profiler(profiler: Optional[KernelProfiler]) -> None:
    """Install ``profiler`` on the NN backend module if it is loaded.

    Imported lazily so tracing pure-exec workloads never drags in numpy and
    the NN stack; if ``repro.nn.backend`` is imported later it simply starts
    unprofiled (its slot defaults to ``None``).
    """
    import sys

    backend_mod = sys.modules.get("repro.nn.backend")
    if backend_mod is not None:
        backend_mod.set_kernel_profiler(profiler)


def _flush_backend_metrics(registry: _metrics.MetricsRegistry) -> None:
    """Absorb the default backend's counters into ``registry`` at flush."""
    import sys

    backend_mod = sys.modules.get("repro.nn.backend")
    if backend_mod is None:
        return
    try:
        _metrics.backend_registry(backend_mod.get_backend(), registry)
    except Exception:  # pragma: no cover - flush must never break a run
        pass


def enable_tracing(sink: Any = None, trace_id: Optional[str] = None,
                   sample_every: int = 1,
                   profile_kernels: bool = True) -> Tracer:
    """Turn on process-wide tracing.  Returns the active :class:`Tracer`."""
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("tracing is already enabled in this process")
    tracer = Tracer(trace_id=trace_id, sink=sink)
    tracer.emit({
        "type": "meta",
        "trace": tracer.trace_id,
        "t0": time.time(),
        "pid": os.getpid(),
        "argv": list(__import__("sys").argv),
    })
    _TRACER = tracer
    if profile_kernels:
        _set_backend_profiler(KernelProfiler(sample_every=sample_every))
    return tracer


def disable_tracing() -> Optional[Tracer]:
    """Turn tracing off: flush the process metrics snapshot and clear hooks."""
    global _TRACER
    tracer = _TRACER
    if tracer is None:
        return None
    _set_backend_profiler(None)
    registry = _metrics.process_registry()
    _flush_backend_metrics(registry)
    tracer.emit({
        "type": "metrics",
        "trace": tracer.trace_id,
        "scope": "process",
        "pid": os.getpid(),
        "snapshot": registry.snapshot(),
    })
    _TRACER = None
    return tracer


@contextmanager
def tracing(path_or_sink: Any = None, *, trace_id: Optional[str] = None,
            sample_every: int = 1,
            profile_kernels: bool = True) -> Iterator[Tracer]:
    """``with tracing("run.jsonl") as tracer:`` — enable, run, flush.

    Accepts a filesystem path (a :class:`repro.obs.sink.JsonlSink` is opened
    and closed for you), an existing sink object, or ``None`` to trace into
    memory only (``tracer.records``).
    """
    sink = None
    owns_sink = False
    if path_or_sink is not None:
        if hasattr(path_or_sink, "write"):
            sink = path_or_sink
        else:
            from repro.obs.sink import JsonlSink
            sink = JsonlSink(path_or_sink)
            owns_sink = True
    tracer = enable_tracing(sink=sink, trace_id=trace_id,
                            sample_every=sample_every,
                            profile_kernels=profile_kernels)
    try:
        yield tracer
    finally:
        disable_tracing()
        if owns_sink:
            sink.close()
