"""Shared fixtures of the model-zoo tests.

The tiny reference checkpoint of the acceptance criteria is built here
in-test: a 2-epoch training run of the tiny cVAE-GAN config (one per
working precision), wrapped in the generative adapter and saved through
``save_channel``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.channel import BaselineChannel, GenerativeChannel, save_channel
from repro.baselines.models import GaussianChannelModel
from repro.core import ModelConfig, Trainer, build_model
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel, FlashParameters


@pytest.fixture(scope="session")
def params():
    return FlashParameters()


@pytest.fixture(scope="session")
def dataset(params):
    """Paired 8x8 training data at the two reference P/E read points."""
    simulator = FlashChannel(params, geometry=BlockGeometry(16, 16),
                             rng=np.random.default_rng(5))
    return generate_paired_dataset(simulator, pe_cycles=(4000.0, 10000.0),
                                   arrays_per_pe=12, array_size=8)


def train_reference_channel(dtype: str, params, dataset,
                            **model_kwargs) -> GenerativeChannel:
    """A briefly trained tiny cVAE-GAN behind the generative adapter."""
    config = dataclasses.replace(ModelConfig.tiny(), epochs=2, dtype=dtype)
    model = build_model("cvae_gan", config, rng=np.random.default_rng(11),
                        **model_kwargs)
    trainer = Trainer(model, dataset, params=params,
                      rng=np.random.default_rng(12), max_steps_per_epoch=2)
    trainer.train()
    return GenerativeChannel(model, params=params,
                             rng=np.random.default_rng(13))


@pytest.fixture(scope="session")
def train_reference():
    """The trainer helper itself, for tests that need a custom variant."""
    return train_reference_channel


@pytest.fixture(scope="session")
def trained_channels(params, dataset):
    """The tiny reference backend at both working precisions."""
    return {dtype: train_reference_channel(dtype, params, dataset)
            for dtype in ("float32", "float64")}


@pytest.fixture(scope="session")
def gaussian_channel(params, dataset):
    model = GaussianChannelModel(params).fit(dataset, max_iterations=60)
    return BaselineChannel(model, rng=np.random.default_rng(21))


@pytest.fixture()
def saved_checkpoint(tmp_path, trained_channels):
    """A float32 reference checkpoint on disk, one per test."""
    path = tmp_path / "cvae_gan-tiny"
    manifest = save_channel(trained_channels["float32"], path,
                            training={"epochs": 2, "seed": 11})
    return path, manifest
