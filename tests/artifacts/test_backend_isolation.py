"""Zoo checkpoints must be independent of the active array backend.

Regression tests for the backend-leak bug: with an accelerated backend
(``"cjit"`` or anything else registered) active during ``save_channel``,
the checkpoint's manifest, payload hashes and sampling-probe digest must be
exactly what a plain-numpy save produces — and a checkpoint saved under an
accelerated backend must reload bit-identically under numpy.  The probe is
the subtle leak vector: it digests a live ``read_voltages`` draw, so it is
pinned to the numpy backend regardless of what the calling thread uses.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.artifacts import compute_probe, load_channel, save_channel
from repro.artifacts.manifest import MANIFEST_FILENAME
from repro.nn.backend import NumpyBackend, use_backend
from repro.nn.cjit import cjit_available

needs_compiler = pytest.mark.skipif(
    not cjit_available(), reason="no C compiler (cc/clang/gcc) on PATH")


class _PerturbingBackend(NumpyBackend):
    """A backend whose matmul is deliberately *not* bit-identical.

    If any probe or payload computation ran through the thread's active
    backend, saving under this one would change the recorded digests.
    """

    name = "_perturbing"

    def matmul(self, a, b, out=None):
        result = super().matmul(a, b, out=None)
        result = result * (1.0 + 1e-3)
        if out is not None:
            out[...] = result
            return out
        return result


def _save(channel, path, backend):
    with use_backend(backend):
        return save_channel(channel, path, training={"seed": 11})


def test_probe_digest_ignores_active_backend(tmp_path, trained_channels):
    channel = trained_channels["float32"]
    canonical = _save(channel, tmp_path / "numpy-save", "numpy")
    perturbed = _save(channel, tmp_path / "perturbed-save",
                      _PerturbingBackend())
    assert perturbed.probe["sha256"] == canonical.probe["sha256"]
    assert perturbed.files == canonical.files


def test_probe_matches_fresh_numpy_computation(trained_channels):
    channel = trained_channels["float32"]
    with use_backend(_PerturbingBackend()):
        under_perturbing = compute_probe(channel)
    assert under_perturbing["sha256"] == compute_probe(channel)["sha256"]


@needs_compiler
def test_checkpoint_saved_under_cjit_reloads_bit_identically(
        tmp_path, trained_channels, cjit_backend):
    channel = trained_channels["float32"]
    canonical = _save(channel, tmp_path / "numpy-save", "numpy")
    under_cjit = _save(channel, tmp_path / "cjit-save", cjit_backend)

    # Identical payload hashes and probe: the backend left no fingerprint.
    assert under_cjit.files == canonical.files
    assert under_cjit.probe["sha256"] == canonical.probe["sha256"]

    # No backend identity anywhere in the manifest.
    manifest_text = (tmp_path / "cjit-save" / MANIFEST_FILENAME).read_text()
    assert json.loads(manifest_text)  # well-formed
    assert "cjit" not in manifest_text

    # A cold reload under plain numpy replays the probe bit-identically.
    restored = load_channel(tmp_path / "cjit-save", run_probe=True,
                            rng=np.random.default_rng(99))
    probe = compute_probe(restored)
    assert probe["sha256"] == canonical.probe["sha256"]


@needs_compiler
def test_probe_check_passes_across_backends(tmp_path, trained_channels,
                                            cjit_backend):
    """Save under numpy, verify under cjit: the pin works both ways."""
    channel = trained_channels["float32"]
    _save(channel, tmp_path / "zoo", "numpy")
    with use_backend(cjit_backend):
        load_channel(tmp_path / "zoo", run_probe=True,
                     rng=np.random.default_rng(7))
