"""The ``python -m repro.artifacts`` CLI: save, inspect, verify, load.

Runs the command handlers in-process (``cli.main(argv)``) against a tiny
reference checkpoint trained by the ``save`` command itself — the same
lifecycle the CI ``zoo-smoke`` job drives.
"""

from __future__ import annotations

import json

import pytest

from repro.artifacts.cli import main

SAVE_ARGS = ["--preset", "tiny", "--epochs", "1", "--max-steps", "2",
             "--arrays-per-pe", "8", "--seed", "7"]


@pytest.fixture(scope="module")
def cli_checkpoint(tmp_path_factory):
    """A checkpoint trained and saved by the CLI itself."""
    path = tmp_path_factory.mktemp("zoo") / "cvae_gan-tiny"
    assert main(["save", str(path), "--arch", "cvae_gan"] + SAVE_ARGS) == 0
    return path


class TestSave:
    def test_save_writes_manifest_and_weights(self, cli_checkpoint):
        assert (cli_checkpoint / "manifest.json").is_file()
        assert (cli_checkpoint / "weights.npz").is_file()

    def test_save_simulator(self, tmp_path, capsys):
        assert main(["save", str(tmp_path / "sim"), "--arch",
                     "simulator"]) == 0
        assert "simulator" in capsys.readouterr().out

    def test_save_baseline(self, tmp_path):
        path = tmp_path / "gaussian"
        assert main(["save", str(path), "--arch", "gaussian",
                     "--fit-iterations", "40"] + SAVE_ARGS) == 0
        assert (path / "fitted.json").is_file()
        assert main(["load", str(path), "--expect", "gaussian",
                     "--check-probe"]) == 0


class TestInspectVerifyLoad:
    def test_inspect_prints_manifest(self, cli_checkpoint, capsys):
        assert main(["inspect", str(cli_checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "cvae_gan" in out and "format version: 1" in out

    def test_inspect_json_is_parseable(self, cli_checkpoint, capsys):
        assert main(["inspect", str(cli_checkpoint), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["registry_name"] == "cvae_gan"
        assert report["files"]["weights.npz"]["present"] is True

    def test_verify_ok(self, cli_checkpoint, capsys):
        assert main(["verify", str(cli_checkpoint)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_load_with_probe_is_bit_identical(self, cli_checkpoint, capsys):
        assert main(["load", str(cli_checkpoint), "--expect", "cvae_gan",
                     "--check-probe"]) == 0
        assert "bit-identical" in capsys.readouterr().out


class TestFailureExitCodes:
    def test_verify_corrupted_fails(self, cli_checkpoint, tmp_path, capsys):
        import shutil

        copy = tmp_path / "corrupt"
        shutil.copytree(cli_checkpoint, copy)
        weights = copy / "weights.npz"
        blob = bytearray(weights.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        weights.write_bytes(bytes(blob))
        assert main(["verify", str(copy)]) == 1
        assert "corrupted" in capsys.readouterr().err

    def test_load_wrong_expect_fails(self, cli_checkpoint, capsys):
        assert main(["load", str(cli_checkpoint), "--expect", "cgan"]) == 1
        assert "cvae_gan" in capsys.readouterr().err

    def test_inspect_non_checkpoint_fails(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path)]) == 1
        assert "not a checkpoint" in capsys.readouterr().err
