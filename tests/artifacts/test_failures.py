"""Checkpoint failure modes raise clear typed errors, never load garbage.

Covers the satellite checklist: corrupted weight archive (hash mismatch),
manifest/registry-name mismatch, missing manifest fields, and an
unsupported future manifest version — plus the adjacent failure surfaces
(missing payloads, unparseable manifests, probe mismatches).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.artifacts import (
    CheckpointError,
    CheckpointIntegrityError,
    ManifestError,
    RegistryMismatchError,
    UnsupportedManifestVersionError,
    load_channel,
    save_baseline,
    verify_checkpoint,
)
from repro.baselines.models import GaussianChannelModel
from repro.channel import build_channel


def edit_manifest(path, mutate):
    """Apply ``mutate`` to the manifest dict on disk and write it back."""
    manifest_path = path / "manifest.json"
    data = json.loads(manifest_path.read_text())
    mutate(data)
    manifest_path.write_text(json.dumps(data))


class TestCorruptedPayloads:
    def test_flipped_bytes_raise_integrity_error(self, saved_checkpoint):
        path, _ = saved_checkpoint
        weights = path / "weights.npz"
        blob = bytearray(weights.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        weights.write_bytes(bytes(blob))
        with pytest.raises(CheckpointIntegrityError, match="corrupted"):
            build_channel("cvae_gan", checkpoint=path)

    def test_truncated_archive_raises_integrity_error(self, saved_checkpoint):
        path, _ = saved_checkpoint
        weights = path / "weights.npz"
        weights.write_bytes(weights.read_bytes()[:100])
        with pytest.raises(CheckpointIntegrityError):
            verify_checkpoint(path)

    def test_missing_payload_raises_integrity_error(self, saved_checkpoint):
        path, _ = saved_checkpoint
        (path / "weights.npz").unlink()
        with pytest.raises(CheckpointIntegrityError, match="missing"):
            build_channel("cvae_gan", checkpoint=path)


class TestRegistryMismatch:
    def test_wrong_architecture_requested(self, saved_checkpoint):
        path, _ = saved_checkpoint
        with pytest.raises(RegistryMismatchError, match="cvae_gan"):
            build_channel("cgan", checkpoint=path)

    def test_wrong_backend_family_requested(self, saved_checkpoint):
        path, _ = saved_checkpoint
        with pytest.raises(RegistryMismatchError):
            build_channel("gaussian", checkpoint=path)

    def test_generative_alias_rejects_baseline(self, tmp_path, params,
                                               dataset):
        model = GaussianChannelModel(params).fit(dataset, max_iterations=40)
        path = tmp_path / "gaussian"
        save_baseline(model, path)
        with pytest.raises(RegistryMismatchError):
            build_channel("generative", checkpoint=path)

    def test_edited_registry_name_fails_on_weight_keys(self, tmp_path):
        """A lying manifest cannot smuggle weights into another arch."""
        from repro.artifacts import save_model
        from repro.core import ModelConfig, build_model

        model = build_model("cgan", ModelConfig.tiny(),
                            rng=np.random.default_rng(0))
        path = tmp_path / "cgan"
        save_model(model, path)
        edit_manifest(path, lambda data:
                      data.__setitem__("registry_name", "cvae_gan"))
        # cvae_gan needs encoder weights the cgan archive does not carry.
        with pytest.raises(ManifestError, match="does not match"):
            build_channel("cvae_gan", checkpoint=path)

    def test_unknown_registry_name(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data.__setitem__("registry_name", "resnet50"))
        with pytest.raises(RegistryMismatchError, match="resnet50"):
            load_channel(path)


class TestManifestValidation:
    @pytest.mark.parametrize("field", ["format_version", "kind",
                                       "registry_name", "files"])
    def test_missing_required_field(self, saved_checkpoint, field):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data: data.pop(field))
        with pytest.raises(ManifestError, match="missing required"):
            load_channel(path)

    def test_future_format_version(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data.__setitem__("format_version", 99))
        with pytest.raises(UnsupportedManifestVersionError, match="99"):
            build_channel("cvae_gan", checkpoint=path)

    def test_future_version_is_a_manifest_and_checkpoint_error(self):
        assert issubclass(UnsupportedManifestVersionError, ManifestError)
        assert issubclass(ManifestError, CheckpointError)
        assert issubclass(CheckpointIntegrityError, CheckpointError)
        assert issubclass(RegistryMismatchError, CheckpointError)

    def test_unknown_kind(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data: data.__setitem__("kind", "oracle"))
        with pytest.raises(ManifestError, match="oracle"):
            load_channel(path)

    def test_missing_model_config(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data.__setitem__("model_config", None))
        with pytest.raises(ManifestError, match="model_config"):
            load_channel(path)

    def test_invalid_model_config_values(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data["model_config"].__setitem__("dtype", "float16"))
        with pytest.raises(ManifestError, match="model_config"):
            load_channel(path)

    def test_invalid_model_kwargs(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data.__setitem__("model_kwargs", {"bogus_flag": True}))
        with pytest.raises(ManifestError, match="model_kwargs"):
            load_channel(path)

    def test_erased_archive_missing_probabilities(self, tmp_path, params,
                                                  dataset):
        """A manifest-consistent but malformed erased archive raises a
        typed error instead of a bare NumPy KeyError."""
        from repro.artifacts.checkpoint import ERASED_FILENAME
        from repro.artifacts.store import record_payload, write_manifest

        model = GaussianChannelModel(params).fit(dataset, max_iterations=40)
        path = tmp_path / "gaussian"
        save_baseline(model, path)
        with np.load(path / ERASED_FILENAME) as archive:
            centers_only = {key: archive[key] for key in archive.files
                            if key.startswith("centers:")}
        np.savez_compressed(path / ERASED_FILENAME, **centers_only)
        # Re-record the hash so only the malformed structure can fail.
        from repro.artifacts import read_manifest

        manifest = read_manifest(path)
        record_payload(manifest, path, ERASED_FILENAME)
        write_manifest(path, manifest)
        with pytest.raises(ManifestError, match="malformed"):
            load_channel(path)

    def test_unparseable_manifest(self, saved_checkpoint):
        path, _ = saved_checkpoint
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(ManifestError, match="parse"):
            load_channel(path)

    def test_directory_without_manifest(self, tmp_path):
        with pytest.raises(ManifestError, match="not a checkpoint"):
            build_channel("cvae_gan", checkpoint=tmp_path)


class TestProbeAndArguments:
    def test_tampered_probe_digest_fails_replay(self, saved_checkpoint):
        path, _ = saved_checkpoint
        edit_manifest(path, lambda data:
                      data["probe"].__setitem__("sha256", "0" * 64))
        with pytest.raises(CheckpointIntegrityError,
                           match="not bit-identical"):
            load_channel(path, run_probe=True)

    def test_probe_requested_but_absent(self, tmp_path, trained_channels):
        from repro.artifacts import save_channel

        path = tmp_path / "noprobe"
        save_channel(trained_channels["float32"], path, probe=False)
        with pytest.raises(ManifestError, match="probe"):
            load_channel(path, run_probe=True)

    def test_checkpoint_excludes_model_arguments(self, saved_checkpoint):
        path, _ = saved_checkpoint
        with pytest.raises(TypeError, match="checkpoint"):
            build_channel("cvae_gan", checkpoint=path, config=object())

    def test_unfitted_baseline_cannot_be_saved(self, tmp_path, params):
        with pytest.raises(ValueError, match="fitted"):
            save_baseline(GaussianChannelModel(params), tmp_path / "x")

    def test_unsupported_object_cannot_be_saved(self, tmp_path):
        from repro.artifacts import save_channel

        with pytest.raises(TypeError, match="cannot checkpoint"):
            save_channel(np.zeros(3), tmp_path / "x")
