"""Checkpoint round-trips: restored backends sample bit-identically.

The acceptance criterion of the model zoo: ``build_channel(name,
checkpoint=path)`` restores a backend with no retraining whose
``read_voltages`` output is bit-identical — for a fixed seed, at both
working precisions — to the in-memory backend it was saved from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts import (
    MANIFEST_VERSION,
    load_channel,
    read_manifest,
    save_channel,
    verify_checkpoint,
)
from repro.channel import SimulatorChannel, build_channel
from repro.core import ConditionalGAN, ConditionalVAEGAN, load_model
from repro.core.base import ConditionalGenerativeModel
from repro.flash.cell import NUM_LEVELS

PROBE_LEVELS = np.random.default_rng(3).integers(0, NUM_LEVELS,
                                                 size=(3, 16, 16))


def assert_bit_identical(original, restored, pe_cycles: float):
    """Same seed in, same voltages out — to the last bit."""
    reference = original.read_voltages(PROBE_LEVELS, pe_cycles,
                                       rng=np.random.default_rng(99))
    reloaded = restored.read_voltages(PROBE_LEVELS, pe_cycles,
                                      rng=np.random.default_rng(99))
    assert reference.dtype == reloaded.dtype == np.float64
    np.testing.assert_array_equal(reference, reloaded)


class TestGenerativeRoundtrip:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_build_channel_checkpoint_bit_identical(self, tmp_path,
                                                    trained_channels, dtype):
        channel = trained_channels[dtype]
        path = tmp_path / f"ck-{dtype}"
        save_channel(channel, path)
        restored = build_channel("cvae_gan", checkpoint=path)
        assert restored.model.dtype == np.dtype(dtype)
        assert restored.model.config == channel.model.config
        assert_bit_identical(channel, restored, 7000.0)

    def test_generative_alias_accepts_any_architecture(self, tmp_path,
                                                       saved_checkpoint):
        path, _ = saved_checkpoint
        restored = build_channel("generative", checkpoint=path)
        assert restored.model.name == "cvae_gan"

    def test_read_repeated_bit_identical(self, tmp_path, trained_channels):
        channel = trained_channels["float32"]
        path = tmp_path / "ck"
        save_channel(channel, path)
        restored = build_channel("cvae_gan", checkpoint=path)
        reference = channel.read_repeated(PROBE_LEVELS[0], 4000.0,
                                          num_samples=3,
                                          rng=np.random.default_rng(7))
        reloaded = restored.read_repeated(PROBE_LEVELS[0], 4000.0,
                                          num_samples=3,
                                          rng=np.random.default_rng(7))
        np.testing.assert_array_equal(reference, reloaded)

    def test_run_probe_passes_on_clean_checkpoint(self, saved_checkpoint):
        path, manifest = saved_checkpoint
        assert manifest.probe is not None
        load_channel(path, run_probe=True)

    def test_condition_on_pe_round_trips(self, tmp_path, params, dataset,
                                         train_reference):
        channel = train_reference("float32", params, dataset,
                                  condition_on_pe=False)
        path = tmp_path / "ablation"
        manifest = save_channel(channel, path)
        assert manifest.model_kwargs == {"condition_on_pe": False}
        restored = build_channel("cvae_gan", checkpoint=path)
        assert restored.model.generator.condition_on_pe is False
        assert_bit_identical(channel, restored, 7000.0)


class TestModelLevelRoundtrip:
    def test_save_load_on_concrete_class(self, tmp_path, trained_channels):
        model = trained_channels["float32"].model
        path = tmp_path / "model"
        model.save(path, params=trained_channels["float32"].params)
        restored = ConditionalVAEGAN.load(path)
        original_state = model.state_dict()
        restored_state = restored.state_dict()
        assert set(original_state) == set(restored_state)
        for key, value in original_state.items():
            assert restored_state[key].dtype == value.dtype
            np.testing.assert_array_equal(restored_state[key], value)

    def test_load_on_base_class_accepts_any_architecture(self, tmp_path,
                                                         trained_channels):
        model = trained_channels["float32"].model
        path = tmp_path / "model"
        model.save(path)
        restored = ConditionalGenerativeModel.load(path)
        assert restored.name == "cvae_gan"

    def test_load_on_wrong_class_raises(self, tmp_path, trained_channels):
        from repro.artifacts import RegistryMismatchError

        path = tmp_path / "model"
        trained_channels["float32"].model.save(path)
        with pytest.raises(RegistryMismatchError):
            ConditionalGAN.load(path)

    def test_zoo_load_model(self, tmp_path, trained_channels):
        path = tmp_path / "model"
        trained_channels["float32"].model.save(path)
        restored = load_model(path, architecture="cvae_gan")
        assert restored.name == "cvae_gan"
        assert not restored.training  # checkpoints load in eval mode


class TestBaselineRoundtrip:
    def test_build_channel_checkpoint_bit_identical(self, tmp_path,
                                                    gaussian_channel):
        path = tmp_path / "gaussian"
        save_channel(gaussian_channel, path)
        restored = build_channel("gaussian", checkpoint=path)
        assert_bit_identical(gaussian_channel, restored, 4000.0)

    def test_fitted_parameters_exact(self, tmp_path, gaussian_channel):
        path = tmp_path / "gaussian"
        save_channel(gaussian_channel, path)
        restored = build_channel("gaussian", checkpoint=path)
        assert restored.model.fitted == gaussian_channel.model.fitted
        grid = np.linspace(0.0, 650.0, 101)
        np.testing.assert_array_equal(
            restored.model.pdf(1, 4000.0, grid),
            gaussian_channel.model.pdf(1, 4000.0, grid))
        assert restored.model.total_kl(10000.0) \
            == gaussian_channel.model.total_kl(10000.0)

    def test_probe_replay(self, tmp_path, gaussian_channel):
        path = tmp_path / "gaussian"
        save_channel(gaussian_channel, path)
        load_channel(path, run_probe=True)


class TestSimulatorRoundtrip:
    def test_build_channel_checkpoint_bit_identical(self, tmp_path, params):
        channel = SimulatorChannel(params, rng=np.random.default_rng(4))
        path = tmp_path / "sim"
        save_channel(channel, path)
        restored = build_channel("simulator", checkpoint=path)
        assert restored.params == params
        assert_bit_identical(channel, restored, 10000.0)

    def test_apply_ici_flag_round_trips(self, tmp_path, params):
        """A no-ICI simulator (baseline-fitting config) must restore as
        no-ICI — not silently revert to the default."""
        channel = SimulatorChannel(params, apply_ici=False,
                                   rng=np.random.default_rng(4))
        path = tmp_path / "sim-no-ici"
        save_channel(channel, path)
        restored = build_channel("simulator", checkpoint=path)
        assert restored.apply_ici is False
        assert restored.supports().ici is False
        assert_bit_identical(channel, restored, 10000.0)
        load_channel(path, run_probe=True)


class TestAdapterFlagRoundtrip:
    def test_strict_pe_flag_round_trips(self, tmp_path, gaussian_channel):
        from repro.channel import BaselineChannel

        strict = BaselineChannel(gaussian_channel.model, strict_pe=True,
                                 rng=np.random.default_rng(8))
        path = tmp_path / "strict"
        save_channel(strict, path)
        restored = build_channel("gaussian", checkpoint=path)
        assert restored.strict_pe is True
        with pytest.raises(ValueError, match="not fitted"):
            restored.read_voltages(PROBE_LEVELS, 5555.0)

    def test_explicit_kwarg_overrides_stored_flag(self, tmp_path,
                                                  gaussian_channel):
        path = tmp_path / "gaussian"
        save_channel(gaussian_channel, path)  # saved with strict_pe=False
        restored = build_channel("gaussian", checkpoint=path, strict_pe=True)
        assert restored.strict_pe is True

    def test_baseline_params_override_rejected(self, tmp_path,
                                               gaussian_channel, params):
        """The fitted distributions are tied to the stored params; an
        adapter-level override would be silently inconsistent physics."""
        path = tmp_path / "gaussian"
        save_channel(gaussian_channel, path)
        with pytest.raises(ValueError, match="cannot be overridden"):
            build_channel("gaussian", checkpoint=path, params=params)

    def test_generative_params_override_rejected(self, tmp_path,
                                                 saved_checkpoint, params):
        path, _ = saved_checkpoint
        with pytest.raises(ValueError, match="cannot be overridden"):
            build_channel("cvae_gan", checkpoint=path, params=params)


class TestManifestContents:
    def test_manifest_records_everything(self, saved_checkpoint):
        path, manifest = saved_checkpoint
        stored = read_manifest(path)
        assert stored.format_version == MANIFEST_VERSION
        assert stored.kind == "generative"
        assert stored.registry_name == "cvae_gan"
        assert stored.model_config["dtype"] == "float32"
        assert stored.model_config["array_size"] == 8
        assert stored.params["voltage_max"] == 650.0
        assert stored.training["epochs"] == 2
        assert "git_revision" in stored.training
        assert set(stored.files) == {"weights.npz"}
        entry = stored.files["weights.npz"]
        assert len(entry["sha256"]) == 64 and entry["size"] > 0
        assert stored.probe is not None and len(stored.probe["sha256"]) == 64

    def test_verify_checkpoint_passes(self, saved_checkpoint):
        path, _ = saved_checkpoint
        manifest = verify_checkpoint(path)
        assert manifest.registry_name == "cvae_gan"
