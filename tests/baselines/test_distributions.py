"""Tests for the baseline probability densities and their samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.baselines import (
    gaussian_pdf,
    normal_laplace_pdf,
    sample_gaussian,
    sample_normal_laplace,
    sample_students_t,
    students_t_pdf,
)

GRID = np.linspace(-200, 200, 8001)


def _integral(pdf_values, grid=GRID):
    return float(np.trapezoid(pdf_values, grid))


class TestGaussian:
    def test_matches_scipy(self):
        values = gaussian_pdf(GRID, mu=3.0, sigma=5.0)
        np.testing.assert_allclose(values, stats.norm.pdf(GRID, 3.0, 5.0),
                                   atol=1e-12)

    def test_integrates_to_one(self):
        assert _integral(gaussian_pdf(GRID, 0.0, 10.0)) == pytest.approx(1.0,
                                                                         abs=1e-4)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_pdf(GRID, 0.0, 0.0)

    def test_sampler_moments(self):
        samples = sample_gaussian(200_000, 5.0, 3.0,
                                  rng=np.random.default_rng(0))
        assert samples.mean() == pytest.approx(5.0, abs=0.05)
        assert samples.std() == pytest.approx(3.0, abs=0.05)


class TestNormalLaplace:
    def test_integrates_to_one(self):
        values = normal_laplace_pdf(GRID, mu=0.0, sigma=5.0, alpha=0.2, beta=0.3)
        assert _integral(values) == pytest.approx(1.0, abs=1e-3)

    def test_symmetric_when_alpha_equals_beta(self):
        values = normal_laplace_pdf(GRID, 0.0, 4.0, 0.25, 0.25)
        np.testing.assert_allclose(values, values[::-1], atol=1e-10)

    def test_heavier_tails_than_gaussian(self):
        """Far from the mean the NL density must exceed a matched Gaussian."""
        nl_values = normal_laplace_pdf(np.array([60.0]), 0.0, 5.0, 0.1, 0.1)
        gaussian_values = gaussian_pdf(np.array([60.0]), 0.0, 5.0)
        assert nl_values[0] > gaussian_values[0]

    def test_tail_decay_is_exponential(self):
        """log-density decays linearly (rate alpha) in the far right tail."""
        alpha = 0.15
        points = np.array([80.0, 100.0, 120.0])
        log_values = np.log(normal_laplace_pdf(points, 0.0, 5.0, alpha, alpha))
        slopes = np.diff(log_values) / np.diff(points)
        np.testing.assert_allclose(slopes, -alpha, atol=0.01)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            normal_laplace_pdf(GRID, 0.0, -1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            normal_laplace_pdf(GRID, 0.0, 1.0, 0.0, 0.1)

    def test_sampler_matches_density_histogram(self):
        rng = np.random.default_rng(1)
        samples = sample_normal_laplace(400_000, 10.0, 4.0, 0.2, 0.3, rng=rng)
        grid = np.linspace(-60, 80, 281)
        counts, edges = np.histogram(samples, bins=grid, density=True)
        centers = (edges[:-1] + edges[1:]) / 2
        expected = normal_laplace_pdf(centers, 10.0, 4.0, 0.2, 0.3)
        # Total variation between histogram and density should be small.
        widths = np.diff(edges)
        tv = 0.5 * np.sum(np.abs(counts - expected) * widths)
        assert tv < 0.02

    def test_sampler_mean(self):
        """E[NL] = mu + 1/alpha - 1/beta."""
        rng = np.random.default_rng(2)
        samples = sample_normal_laplace(300_000, 0.0, 2.0, 0.5, 0.25, rng=rng)
        assert samples.mean() == pytest.approx(2.0 - 4.0, abs=0.05)


class TestStudentsT:
    def test_matches_scipy(self):
        values = students_t_pdf(GRID, mu=2.0, scale=4.0, dof=5.0)
        np.testing.assert_allclose(values, stats.t.pdf(GRID, 5.0, loc=2.0,
                                                       scale=4.0), atol=1e-10)

    def test_integrates_to_one(self):
        values = students_t_pdf(GRID, 0.0, 5.0, 4.0)
        assert _integral(values) == pytest.approx(1.0, abs=1e-2)

    def test_approaches_gaussian_for_large_dof(self):
        values = students_t_pdf(GRID, 0.0, 5.0, 1e6)
        np.testing.assert_allclose(values, gaussian_pdf(GRID, 0.0, 5.0),
                                   atol=1e-6)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            students_t_pdf(GRID, 0.0, 0.0, 3.0)
        with pytest.raises(ValueError):
            students_t_pdf(GRID, 0.0, 1.0, -1.0)

    def test_sampler_median(self):
        samples = sample_students_t(200_000, 7.0, 2.0, 4.0,
                                    rng=np.random.default_rng(3))
        assert np.median(samples) == pytest.approx(7.0, abs=0.05)

    @given(st.floats(-20, 20), st.floats(0.5, 20), st.floats(1.0, 30))
    @settings(max_examples=40, deadline=None)
    def test_density_positive_and_finite(self, mu, scale, dof):
        values = students_t_pdf(np.linspace(-100, 100, 50), mu, scale, dof)
        assert np.all(values > 0) and np.all(np.isfinite(values))

    def test_heavier_tails_than_normal_laplace_and_gaussian(self):
        """Tail ordering: Student's t > Normal-Laplace > Gaussian."""
        point = np.array([120.0])
        gaussian_tail = gaussian_pdf(point, 0.0, 8.0)[0]
        nl_tail = normal_laplace_pdf(point, 0.0, 8.0, 0.15, 0.15)[0]
        t_tail = students_t_pdf(point, 0.0, 8.0, 2.5)[0]
        assert t_tail > nl_tail > gaussian_tail
