"""Tests for KL fitting and the statistical channel models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_MODELS,
    GaussianChannelModel,
    NormalLaplaceChannelModel,
    StudentsTChannelModel,
    fit_level_distribution,
    gaussian_pdf,
    kl_divergence_to_histogram,
)
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel
from repro.flash.cell import ERASED_LEVEL


@pytest.fixture(scope="module")
def dataset():
    channel = FlashChannel(geometry=BlockGeometry(32, 32),
                           rng=np.random.default_rng(11))
    return generate_paired_dataset(channel, pe_cycles=(4000, 10000),
                                   arrays_per_pe=40, array_size=32)


def _histogram(samples, bins=150, low=-60, high=60):
    edges = np.linspace(low, high, bins + 1)
    counts, _ = np.histogram(samples, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2
    return centers, counts / counts.sum()


class TestKLDivergence:
    def test_zero_for_matching_density(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.0, 5.0, size=400_000)
        centers, probabilities = _histogram(samples)
        kl = kl_divergence_to_histogram(centers, probabilities,
                                        lambda x: gaussian_pdf(x, 0.0, 5.0))
        assert kl < 5e-3

    def test_positive_for_mismatched_density(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.0, 5.0, size=100_000)
        centers, probabilities = _histogram(samples)
        kl = kl_divergence_to_histogram(centers, probabilities,
                                        lambda x: gaussian_pdf(x, 20.0, 5.0))
        assert kl > 1.0

    def test_infinite_for_zero_density(self):
        centers = np.array([0.0, 1.0])
        probabilities = np.array([0.5, 0.5])
        kl = kl_divergence_to_histogram(centers, probabilities,
                                        lambda x: np.zeros_like(x))
        assert kl == float("inf")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence_to_histogram(np.zeros(3), np.zeros(4), lambda x: x)

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            kl_divergence_to_histogram(np.zeros(3), np.zeros(3), lambda x: x)


class TestFitLevelDistribution:
    def test_gaussian_fit_recovers_parameters(self):
        rng = np.random.default_rng(1)
        centers, probabilities = _histogram(rng.normal(5.0, 4.0, size=300_000))
        fit = fit_level_distribution(centers, probabilities, "gaussian")
        assert fit["mu"] == pytest.approx(5.0, abs=0.2)
        assert fit["sigma"] == pytest.approx(4.0, abs=0.2)
        assert fit["kl"] < 0.01

    def test_normal_laplace_fits_heavy_tailed_data_better_than_gaussian(self):
        rng = np.random.default_rng(2)
        core = rng.normal(0.0, 4.0, size=250_000)
        tails = rng.laplace(0.0, 10.0, size=250_000)
        use_tail = rng.random(250_000) < 0.1
        samples = np.where(use_tail, tails, core)
        centers, probabilities = _histogram(samples)
        gaussian_fit = fit_level_distribution(centers, probabilities, "gaussian")
        nl_fit = fit_level_distribution(centers, probabilities, "normal_laplace")
        assert nl_fit["kl"] < gaussian_fit["kl"]

    def test_students_t_fit_returns_positive_dof(self):
        rng = np.random.default_rng(3)
        samples = 3.0 * rng.standard_t(5, size=200_000)
        centers, probabilities = _histogram(samples)
        fit = fit_level_distribution(centers, probabilities, "students_t")
        assert fit["dof"] > 0.5
        assert fit["kl"] < 0.02

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            fit_level_distribution(np.zeros(3), np.ones(3) / 3, "cauchy")


class TestStatisticalChannelModels:
    @pytest.fixture(scope="class")
    def fitted_models(self, dataset):
        models = {}
        for model_class in BASELINE_MODELS:
            models[model_class.__name__] = model_class(bins=120).fit(
                dataset, max_iterations=200)
        return models

    def test_all_baselines_fit_without_error(self, fitted_models):
        assert set(fitted_models) == {"GaussianChannelModel",
                                      "NormalLaplaceChannelModel",
                                      "StudentsTChannelModel"}

    def test_fitted_pe_points(self, fitted_models):
        for model in fitted_models.values():
            assert set(model.fitted) == {4000.0, 10000.0}

    def test_level_zero_not_fitted(self, fitted_models):
        model = fitted_models["GaussianChannelModel"]
        assert ERASED_LEVEL not in model.fitted[4000.0]
        with pytest.raises(ValueError):
            model.pdf(0, 4000, np.linspace(0, 650, 10))

    def test_pdf_normalised(self, fitted_models):
        grid = np.linspace(0, 650, 2601)
        for model in fitted_models.values():
            pdf = model.pdf(4, 4000, grid)
            assert np.trapezoid(pdf, grid) == pytest.approx(1.0, abs=0.05)

    def test_pdf_peaks_near_level_mean(self, fitted_models, dataset):
        grid = np.linspace(0, 650, 2601)
        subset = dataset.filter_pe(4000)
        empirical_mean = subset.voltages[subset.program_levels == 4].mean()
        for model in fitted_models.values():
            pdf = model.pdf(4, 4000, grid)
            assert abs(grid[np.argmax(pdf)] - empirical_mean) < 15

    def test_sample_shape_and_range(self, fitted_models, rng=None):
        generator = np.random.default_rng(5)
        model = fitted_models["NormalLaplaceChannelModel"]
        levels = generator.integers(0, 8, size=(4, 16, 16))
        voltages = model.sample(levels, 10000, rng=generator)
        assert voltages.shape == levels.shape
        assert voltages.min() >= 0.0 and voltages.max() <= 650.0

    def test_sample_means_track_levels(self, fitted_models):
        generator = np.random.default_rng(6)
        model = fitted_models["GaussianChannelModel"]
        levels = np.repeat(np.arange(1, 8), 4000).reshape(7, -1)
        voltages = model.sample(levels, 4000, rng=generator)
        means = [voltages[levels == level].mean() for level in range(1, 8)]
        assert np.all(np.diff(means) > 30)

    def test_sample_unfitted_pe_raises(self, fitted_models):
        model = fitted_models["GaussianChannelModel"]
        with pytest.raises(RuntimeError):
            model.sample(np.zeros((4, 4), dtype=int), 1234)

    def test_erased_cells_sampled_from_histogram(self, fitted_models, dataset):
        generator = np.random.default_rng(7)
        model = fitted_models["GaussianChannelModel"]
        levels = np.zeros((40, 40), dtype=int)
        voltages = model.sample(levels, 4000, rng=generator)
        subset = dataset.filter_pe(4000)
        measured = subset.voltages[subset.program_levels == 0]
        assert abs(voltages.mean() - measured.mean()) < 8.0

    def test_total_kl_positive(self, fitted_models):
        for model in fitted_models.values():
            assert model.total_kl(4000) > 0.0

    def test_normal_laplace_beats_gaussian_on_worn_device(self, fitted_models):
        """Fig. 5: the NL model captures the heavy tails the Gaussian misses."""
        gaussian_kl = fitted_models["GaussianChannelModel"].total_kl(10000)
        nl_kl = fitted_models["NormalLaplaceChannelModel"].total_kl(10000)
        assert nl_kl < gaussian_kl

    def test_display_names_match_paper_labels(self):
        assert GaussianChannelModel.display_name == "Gaussian"
        assert NormalLaplaceChannelModel.display_name == "Normal-Laplace"
        assert StudentsTChannelModel.display_name == "Student's t"
