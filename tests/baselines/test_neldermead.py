"""Tests for the from-scratch Nelder-Mead simplex optimizer."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import optimize

from repro.baselines import nelder_mead


class TestNelderMead:
    def test_minimises_1d_quadratic(self):
        result = nelder_mead(lambda x: (x[0] - 3.0) ** 2, [0.0])
        assert result.x[0] == pytest.approx(3.0, abs=1e-3)
        assert result.converged

    def test_minimises_2d_quadratic(self):
        def objective(theta):
            return (theta[0] - 1.0) ** 2 + 10 * (theta[1] + 2.0) ** 2
        result = nelder_mead(objective, [5.0, 5.0], max_iterations=1000)
        np.testing.assert_allclose(result.x, [1.0, -2.0], atol=1e-3)

    def test_minimises_rosenbrock(self):
        def rosenbrock(theta):
            return (1 - theta[0]) ** 2 + 100 * (theta[1] - theta[0] ** 2) ** 2
        result = nelder_mead(rosenbrock, [-1.0, 1.0], max_iterations=3000,
                             xatol=1e-9, fatol=1e-12)
        np.testing.assert_allclose(result.x, [1.0, 1.0], atol=1e-2)

    def test_handles_infinite_constraint_values(self):
        def objective(theta):
            if theta[0] <= 0:
                return float("inf")
            return (np.log(theta[0])) ** 2
        result = nelder_mead(objective, [5.0], max_iterations=500)
        assert result.x[0] == pytest.approx(1.0, abs=1e-2)

    def test_matches_scipy_on_quartic(self):
        def objective(theta):
            return float((theta[0] - 2) ** 4 + (theta[1] + 1) ** 2
                         + 0.5 * theta[0] * theta[1])
        ours = nelder_mead(objective, [0.0, 0.0], max_iterations=2000,
                           xatol=1e-8, fatol=1e-10)
        scipy_result = optimize.minimize(objective, [0.0, 0.0],
                                         method="Nelder-Mead")
        assert ours.fun == pytest.approx(scipy_result.fun, abs=1e-4)

    def test_iteration_budget_respected(self):
        result = nelder_mead(lambda x: x[0] ** 2, [100.0], max_iterations=3)
        assert result.iterations <= 3
        assert not result.converged

    def test_function_evaluation_count_positive(self):
        result = nelder_mead(lambda x: x[0] ** 2, [1.0])
        assert result.function_evaluations >= result.iterations

    def test_rejects_empty_start(self):
        with pytest.raises(ValueError):
            nelder_mead(lambda x: 0.0, [])

    def test_already_optimal_start(self):
        result = nelder_mead(lambda x: (x[0] ** 2 + x[1] ** 2), [0.0, 0.0])
        assert result.fun == pytest.approx(0.0, abs=1e-8)

    @pytest.mark.parametrize("target", [-4.0, 0.5, 12.0])
    def test_various_targets(self, target):
        result = nelder_mead(lambda x: abs(x[0] - target) ** 1.5, [0.0],
                             max_iterations=800)
        assert result.x[0] == pytest.approx(target, abs=1e-2)
