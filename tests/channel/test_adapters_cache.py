"""Unit tests for the channel adapters, tiling, resolution and the LRU cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.models import GaussianChannelModel
from repro.channel import (
    BaselineChannel,
    ConditionCache,
    GenerativeChannel,
    SimulatorChannel,
    resolve_channel,
)
from repro.channel.adapters import _tile_arrays, _untile_arrays
from repro.core import GenerativeChannelModel, ModelConfig, build_model
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel


class TestConditionCache:
    def test_hit_miss_accounting(self):
        cache = ConditionCache(maxsize=4)
        calls = []
        for _ in range(3):
            cache.get_or_compute("key", lambda: calls.append(1) or len(calls))
        assert calls == [1]
        assert cache.stats() == {"hits": 2, "misses": 1, "merges": 0,
                                 "merged_entries": 0, "size": 1}

    def test_lru_eviction(self):
        cache = ConditionCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)   # refresh "a"
        cache.get_or_compute("c", lambda: 3)   # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_zero_size_disables_caching(self):
        cache = ConditionCache(maxsize=0)
        values = [cache.get_or_compute("k", lambda: object())
                  for _ in range(2)]
        assert values[0] is not values[1]
        assert len(cache) == 0

    def test_clear(self):
        cache = ConditionCache()
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.stats()["hits"] == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            ConditionCache(maxsize=-1)

    def test_failed_compute_does_not_poison_the_key(self):
        cache = ConditionCache(maxsize=4)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert "k" not in cache and len(cache) == 0
        assert cache.get_or_compute("k", lambda: 7) == 7
        assert cache.stats()["misses"] == 2

    def test_reentrant_compute_fails_fast(self):
        cache = ConditionCache(maxsize=4)
        with pytest.raises(RuntimeError, match="reentrant"):
            cache.get_or_compute(
                "k", lambda: cache.get_or_compute("k", lambda: 1))
        # The failed reservation is cleaned up; the key stays computable.
        assert cache.get_or_compute("k", lambda: 2) == 2

    def test_concurrent_same_key_computes_do_not_raise(self):
        """Another thread computing the same key is concurrency, not
        reentrancy: both must compute successfully (duplicate work is fine,
        a crash is not)."""
        import threading

        cache = ConditionCache(maxsize=4)
        started = threading.Event()
        release = threading.Event()

        def slow_compute():
            started.set()
            release.wait(timeout=5)
            return "slow"

        errors = []

        def racer():
            started.wait(timeout=5)
            try:
                cache.get_or_compute("k", lambda: "fast")
            except BaseException as error:  # pragma: no cover - fail path
                errors.append(error)
            finally:
                release.set()

        thread = threading.Thread(target=racer)
        thread.start()
        value = cache.get_or_compute("k", slow_compute)
        thread.join(timeout=5)
        assert not errors
        assert value == "slow"

    def test_merge_adopts_new_entries_and_counts(self):
        parent, worker = ConditionCache(maxsize=8), ConditionCache(maxsize=8)
        parent.get_or_compute("shared", lambda: "parent")
        worker.get_or_compute("shared", lambda: "worker")
        worker.get_or_compute("fresh", lambda: 3)
        adopted = parent.merge(worker)
        assert adopted == 1
        assert parent.get_or_compute("fresh", lambda: None) == 3
        # Parent wins on conflicts (deterministic computes agree anyway).
        assert parent.get_or_compute("shared", lambda: None) == "parent"
        stats = parent.stats()
        assert stats["merges"] == 1 and stats["merged_entries"] == 1
        # Worker activity is folded into the parent's counters.
        assert stats["misses"] == 1 + 2

    def test_merge_respects_lru_capacity(self):
        parent, worker = ConditionCache(maxsize=2), ConditionCache(maxsize=4)
        parent.get_or_compute("old", lambda: 0)
        parent.get_or_compute("recent", lambda: 1)
        for key in ("w1", "w2"):
            worker.get_or_compute(key, lambda: key)
        parent.merge(worker)
        # Capacity 2: the worker's most recent entry survives alongside the
        # last inserted; the parent's stale entries were evicted first.
        assert len(parent) == 2 and "w2" in parent

    def test_merge_refreshes_conflict_recency(self):
        parent, worker = ConditionCache(maxsize=2), ConditionCache(maxsize=2)
        parent.get_or_compute("a", lambda: 1)
        parent.get_or_compute("b", lambda: 2)
        worker.get_or_compute("a", lambda: 1)
        parent.merge(worker)
        parent.get_or_compute("c", lambda: 3)   # evicts "b", not "a"
        assert "a" in parent and "b" not in parent

    def test_merge_rejects_self(self):
        cache = ConditionCache()
        with pytest.raises(ValueError):
            cache.merge(cache)


class TestTiling:
    def test_roundtrip_preserves_layout(self):
        rng = np.random.default_rng(0)
        arrays = rng.integers(0, 8, size=(3, 24, 16))
        tiles, layout = _tile_arrays(arrays, 8)
        assert tiles.shape == (3 * 3 * 2, 8, 8)
        np.testing.assert_array_equal(_untile_arrays(tiles, layout, 8),
                                      arrays)

    def test_tile_contents_are_crops(self):
        arrays = np.arange(16 * 16).reshape(1, 16, 16)
        tiles, _ = _tile_arrays(arrays, 8)
        np.testing.assert_array_equal(tiles[0], arrays[0, :8, :8])
        np.testing.assert_array_equal(tiles[1], arrays[0, :8, 8:])
        np.testing.assert_array_equal(tiles[2], arrays[0, 8:, :8])

    def test_single_array_squeeze(self):
        array = np.zeros((8, 8), dtype=int)
        tiles, layout = _tile_arrays(array, 8)
        assert tiles.shape == (1, 8, 8)
        assert _untile_arrays(tiles, layout, 8).shape == (8, 8)

    def test_rejects_non_tileable(self):
        with pytest.raises(ValueError, match="not tileable"):
            _tile_arrays(np.zeros((12, 12), dtype=int), 8)


@pytest.fixture(scope="module")
def tiny_generative():
    model = build_model("cvae_gan", ModelConfig.tiny(),
                        rng=np.random.default_rng(1))
    return GenerativeChannel(model, rng=np.random.default_rng(2),
                             chunk_size=4)


class TestGenerativeChannel:
    def test_reads_full_blocks_through_tiling(self, tiny_generative):
        levels = np.random.default_rng(3).integers(0, 8, size=(2, 32, 32))
        voltages = tiny_generative.read_voltages(levels, 7000)
        assert voltages.shape == levels.shape

    def test_pads_non_tileable_shapes(self, tiny_generative):
        levels = np.random.default_rng(8).integers(0, 8, size=(2, 12, 20))
        voltages = tiny_generative.read_voltages(levels, 7000)
        assert voltages.shape == levels.shape
        repeated = tiny_generative.read_repeated(levels, 7000, num_samples=2)
        assert repeated.shape == (2, 2, 12, 20)

    def test_read_repeated_shape(self, tiny_generative):
        levels = np.random.default_rng(4).integers(0, 8, size=(2, 16, 16))
        repeated = tiny_generative.read_repeated(levels, 7000, num_samples=3)
        assert repeated.shape == (3, 2, 16, 16)

    def test_read_repeated_samples_differ(self, tiny_generative):
        levels = np.random.default_rng(5).integers(0, 8, size=(8, 8))
        repeated = tiny_generative.read_repeated(levels, 7000, num_samples=2)
        assert not np.array_equal(repeated[0], repeated[1])

    def test_rejects_bad_chunk_size(self, tiny_generative):
        with pytest.raises(ValueError):
            GenerativeChannel(tiny_generative.model, chunk_size=0)

    def test_rejects_non_model(self):
        with pytest.raises(TypeError):
            GenerativeChannel(object())

    def test_reads_do_not_pollute_condition_cache(self, tiny_generative):
        """Plain reads must not fill (and evict from) the condition cache.

        The cache is reserved for expensive per-condition artifacts such as
        density tables; a P/E sweep of reads previously evicted them.
        """
        tiny_generative.cache.clear()
        table = tiny_generative.density_table(7000, num_bins=16, num_blocks=1)
        levels = np.zeros((8, 8), dtype=int)
        for pe in range(1000, 50000, 1000):
            tiny_generative.read_voltages(levels, pe)
        assert tiny_generative.density_table(7000, num_bins=16,
                                             num_blocks=1) is table


class TestResolveChannel:
    def test_passthrough(self, tiny_generative):
        assert resolve_channel(tiny_generative) is tiny_generative

    def test_wraps_flash_channel(self):
        simulator = FlashChannel(rng=np.random.default_rng(0))
        wrapped = resolve_channel(simulator)
        assert isinstance(wrapped, SimulatorChannel)
        assert wrapped.simulator is simulator
        assert wrapped.rng is simulator.rng

    def test_wraps_legacy_generative_wrapper(self):
        model = build_model("cvae_gan", ModelConfig.tiny(),
                            rng=np.random.default_rng(1))
        legacy = GenerativeChannelModel(model, rng=np.random.default_rng(2))
        wrapped = resolve_channel(legacy)
        assert isinstance(wrapped, GenerativeChannel)
        assert wrapped.model is model

    def test_wraps_fitted_baseline(self):
        simulator = FlashChannel(geometry=BlockGeometry(32, 32),
                                 rng=np.random.default_rng(3))
        dataset = generate_paired_dataset(simulator, pe_cycles=(7000,),
                                          arrays_per_pe=8, array_size=16)
        fitted = GaussianChannelModel().fit(dataset, max_iterations=40)
        wrapped = resolve_channel(fitted)
        assert isinstance(wrapped, BaselineChannel)

    def test_builds_by_name(self):
        assert isinstance(resolve_channel("simulator"), SimulatorChannel)

    def test_rejects_unknown_objects(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            resolve_channel(42)


class TestBaselineChannel:
    @pytest.fixture(scope="class")
    def baseline(self):
        simulator = FlashChannel(geometry=BlockGeometry(32, 32),
                                 rng=np.random.default_rng(4))
        dataset = generate_paired_dataset(simulator,
                                          pe_cycles=(4000, 10000),
                                          arrays_per_pe=8, array_size=16)
        return BaselineChannel(GaussianChannelModel, dataset=dataset,
                               rng=np.random.default_rng(5),
                               fit_iterations=40)

    def test_snaps_to_nearest_fitted_pe(self, baseline):
        levels = np.random.default_rng(6).integers(0, 8, size=(16, 16))
        voltages = baseline.read_voltages(levels, 4500)
        assert voltages.shape == levels.shape

    def test_strict_pe_raises(self, baseline):
        baseline.strict_pe = True
        try:
            with pytest.raises(ValueError, match="not fitted at"):
                baseline.read_voltages(np.zeros((4, 4), dtype=int), 5000)
        finally:
            baseline.strict_pe = False

    def test_rejects_non_baseline_model(self):
        with pytest.raises(TypeError):
            BaselineChannel(object())
