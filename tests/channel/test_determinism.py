"""Determinism regression suite: one seeded generator, reproducible outputs.

``build_model``, ``GenerativeChannelModel`` and ``build_channel`` all accept
a single :class:`numpy.random.Generator`; these tests lock in that the
generator is actually propagated everywhere (weight initialisation, latent
sampling, channel noise) — rebuilding with the same seed must reproduce
results bit for bit, with no silent ``default_rng()`` fallback anywhere on
the path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import GenerativeChannel, build_channel
from repro.core import GenerativeChannelModel, ModelConfig, build_model
from repro.data import generate_paired_dataset
from repro.experiments import ExperimentSetup
from repro.flash import BlockGeometry, FlashChannel


def _levels(seed: int = 3, shape=(2, 16, 16)) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 8, size=shape)


class TestBuildModelDeterminism:
    @pytest.mark.parametrize("architecture",
                             ["cvae_gan", "cgan", "cvae", "bicycle_gan"])
    def test_same_seed_same_weights(self, architecture):
        config = ModelConfig.tiny()
        first = build_model(architecture, config,
                            rng=np.random.default_rng(42))
        second = build_model(architecture, config,
                             rng=np.random.default_rng(42))
        state_first, state_second = first.state_dict(), second.state_dict()
        assert state_first.keys() == state_second.keys()
        for key in state_first:
            np.testing.assert_array_equal(state_first[key],
                                          state_second[key])

    def test_same_seed_same_samples(self):
        config = ModelConfig.tiny()
        outputs = []
        for _ in range(2):
            model = build_model("cvae_gan", config,
                                rng=np.random.default_rng(7))
            program = np.zeros((2, 1, 8, 8))
            outputs.append(model.sample(program, np.array([0.4, 0.7]),
                                        np.random.default_rng(8)))
        np.testing.assert_array_equal(outputs[0], outputs[1])


class TestChannelDeterminism:
    def test_simulator_backend(self):
        levels = _levels()
        reads = [build_channel("simulator",
                               geometry=BlockGeometry(16, 16),
                               rng=np.random.default_rng(0)
                               ).read_voltages(levels, 7000)
                 for _ in range(2)]
        np.testing.assert_array_equal(reads[0], reads[1])

    def test_generative_backend(self):
        levels = _levels()
        reads = []
        for _ in range(2):
            channel = build_channel("cvae_gan", config=ModelConfig.tiny(),
                                    rng=np.random.default_rng(1))
            reads.append(channel.read_voltages(levels, 7000))
        np.testing.assert_array_equal(reads[0], reads[1])

    def test_generative_chunking_invariant(self):
        """Chunk size is a throughput knob, not a semantics knob.

        The latent stream is identical for any chunking; outputs agree up to
        the float rounding of differently-blocked batched matmuls.
        """
        levels = _levels()
        model = build_model("cvae_gan", ModelConfig.tiny(),
                            rng=np.random.default_rng(2))
        reads = [GenerativeChannel(model, rng=np.random.default_rng(3),
                                   chunk_size=chunk
                                   ).read_voltages(levels, 7000)
                 for chunk in (1, 4, 64)]
        np.testing.assert_allclose(reads[0], reads[1], rtol=0, atol=1e-9)
        np.testing.assert_allclose(reads[0], reads[2], rtol=0, atol=1e-9)

    def test_legacy_wrapper_matches_adapter(self):
        """The legacy GenerativeChannelModel and the adapter agree exactly."""
        model = build_model("cvae_gan", ModelConfig.tiny(),
                            rng=np.random.default_rng(4))
        levels = _levels(shape=(3, 8, 8))
        legacy = GenerativeChannelModel(
            model, rng=np.random.default_rng(5)).read(levels, 7000)
        adapter = GenerativeChannel(
            model, rng=np.random.default_rng(5)).read_voltages(levels, 7000)
        np.testing.assert_array_equal(legacy, adapter)

    def test_baseline_backend(self):
        simulator = FlashChannel(geometry=BlockGeometry(32, 32),
                                 rng=np.random.default_rng(6))
        dataset = generate_paired_dataset(simulator, pe_cycles=(7000,),
                                          arrays_per_pe=16, array_size=16)
        levels = _levels()
        reads = [build_channel("gaussian", dataset=dataset,
                               rng=np.random.default_rng(9),
                               fit_iterations=60
                               ).read_voltages(levels, 7000)
                 for _ in range(2)]
        np.testing.assert_array_equal(reads[0], reads[1])

    def test_per_call_rng_override(self):
        channel = build_channel("simulator", geometry=BlockGeometry(16, 16),
                                rng=np.random.default_rng(10))
        levels = _levels()
        first = channel.read_voltages(levels, 7000,
                                      rng=np.random.default_rng(11))
        second = channel.read_voltages(levels, 7000,
                                       rng=np.random.default_rng(11))
        np.testing.assert_array_equal(first, second)


class TestExperimentSetupStreams:
    def test_spawn_rng_reproducible_and_label_independent(self):
        setup = ExperimentSetup(arrays_per_pe=4, pe_cycles=(4000,))
        first = setup.spawn_rng("alpha").standard_normal(4)
        again = setup.spawn_rng("alpha").standard_normal(4)
        other = setup.spawn_rng("beta").standard_normal(4)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_same_seed_same_channel_stream(self):
        blocks = []
        for _ in range(2):
            setup = ExperimentSetup(arrays_per_pe=4, pe_cycles=(4000,),
                                    seed=21)
            blocks.append(setup.channel.program_random_block())
        np.testing.assert_array_equal(blocks[0], blocks[1])
