"""Registry-conformance suite: every backend honours the channel protocol.

Each entry of :data:`repro.channel.CHANNEL_REGISTRY` is built with a small
test configuration and run through the same contract: output shapes and
dtype, the physical voltage window, the temporal operating-condition axes,
capability flags, the condition cache, and — for backends that promise it —
a monotone error rate versus P/E cycling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    CHANNEL_REGISTRY,
    ChannelCapabilities,
    ChannelModel,
    build_channel,
)
from repro.core import ModelConfig
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel, FlashParameters
from repro.flash.cell import ERASED_LEVEL, NUM_LEVELS

BACKEND_NAMES = sorted(CHANNEL_REGISTRY)

#: P/E read points the test dataset covers (baselines only exist at these).
FITTED_PE = (4000.0, 10000.0)


@pytest.fixture(scope="module")
def params():
    return FlashParameters()


@pytest.fixture(scope="module")
def tiny_dataset(params):
    channel = FlashChannel(params, geometry=BlockGeometry(32, 32),
                           rng=np.random.default_rng(100))
    return generate_paired_dataset(channel, pe_cycles=FITTED_PE,
                                   arrays_per_pe=24, array_size=16)


@pytest.fixture(scope="module")
def backends(params, tiny_dataset):
    """One instance of every registered backend, built by name."""
    built = {}
    for index, name in enumerate(BACKEND_NAMES):
        rng = np.random.default_rng(1000 + index)
        kwargs = {"params": params, "rng": rng,
                  "geometry": BlockGeometry(16, 16)}
        if name in ("gaussian", "normal_laplace", "students_t"):
            kwargs.update(dataset=tiny_dataset, fit_iterations=60)
        elif name != "simulator":
            kwargs.update(config=ModelConfig.tiny())
        built[name] = build_channel(name, **kwargs)
    return built


@pytest.fixture(scope="module")
def levels():
    return np.random.default_rng(7).integers(0, NUM_LEVELS, size=(3, 16, 16))


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestProtocolContract:
    def test_is_channel_model(self, backends, name):
        assert isinstance(backends[name], ChannelModel)

    def test_capabilities(self, backends, name):
        capabilities = backends[name].supports()
        assert isinstance(capabilities, ChannelCapabilities)
        assert capabilities.name
        assert capabilities.retention and capabilities.read_disturb

    def test_read_voltages_shape_and_dtype(self, backends, name, levels):
        voltages = backends[name].read_voltages(levels, FITTED_PE[0])
        assert voltages.shape == levels.shape
        assert voltages.dtype == np.float64

    def test_single_array_shape(self, backends, name, levels):
        voltages = backends[name].read_voltages(levels[0], FITTED_PE[0])
        assert voltages.shape == levels[0].shape

    def test_voltages_within_physical_window(self, backends, name, levels,
                                             params):
        voltages = backends[name].read_voltages(levels, FITTED_PE[1])
        assert voltages.min() >= params.voltage_min
        assert voltages.max() <= params.voltage_max

    def test_rejects_invalid_inputs(self, backends, name, levels):
        channel = backends[name]
        with pytest.raises(ValueError):
            channel.read_voltages(np.zeros(16, dtype=int), FITTED_PE[0])
        with pytest.raises(ValueError):
            channel.read_voltages(levels, -1.0)
        with pytest.raises(ValueError):
            channel.read_voltages(levels, FITTED_PE[0], retention_hours=-1.0)
        with pytest.raises(ValueError):
            channel.read_voltages(np.full((4, 4), NUM_LEVELS), FITTED_PE[0])

    def test_program_random_block(self, backends, name):
        block = backends[name].program_random_block()
        assert block.shape == (16, 16)
        assert block.min() >= 0 and block.max() < NUM_LEVELS

    def test_paired_blocks(self, backends, name):
        program, voltages = backends[name].paired_blocks(2, FITTED_PE[0])
        assert program.shape == (2, 16, 16)
        assert voltages.shape == (2, 16, 16)

    def test_retention_shifts_programmed_levels_down(self, backends, name):
        channel = backends[name]
        levels = np.full((64, 64), NUM_LEVELS - 1)
        rng = np.random.default_rng(5)
        fresh = channel.read_voltages(levels, FITTED_PE[0], rng=rng)
        aged = channel.read_voltages(levels, FITTED_PE[0],
                                     retention_hours=2000.0,
                                     rng=np.random.default_rng(5))
        assert aged.mean() < fresh.mean()

    def test_read_disturb_shifts_erased_cells_up(self, backends, name):
        channel = backends[name]
        levels = np.full((64, 64), ERASED_LEVEL)
        fresh = channel.read_voltages(levels, FITTED_PE[0],
                                      rng=np.random.default_rng(6))
        disturbed = channel.read_voltages(levels, FITTED_PE[0],
                                          read_disturbs=500000,
                                          rng=np.random.default_rng(6))
        assert disturbed.mean() > fresh.mean()

    def test_density_table_cached(self, backends, name):
        channel = backends[name]
        first = channel.density_table(FITTED_PE[0], num_bins=32, num_blocks=1)
        second = channel.density_table(FITTED_PE[0], num_bins=32, num_blocks=1)
        assert first is second
        assert channel.cache.hits >= 1

    def test_wear_monotone_error_rate(self, backends, name):
        """Backends that promise wear monotonicity must deliver it."""
        channel = backends[name]
        if not channel.supports().wear_monotone:
            pytest.skip(f"{name} does not promise wear monotonicity")
        young = channel.level_error_rate_estimate(FITTED_PE[0], num_blocks=12)
        old = channel.level_error_rate_estimate(FITTED_PE[1], num_blocks=12)
        assert old > young


class TestRegistry:
    def test_expected_backends_registered(self):
        assert {"simulator", "generative", "cvae_gan", "cgan", "cvae",
                "bicycle_gan", "gaussian", "normal_laplace",
                "students_t"} <= set(CHANNEL_REGISTRY)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown channel backend"):
            build_channel("quantum")

    def test_duplicate_registration_rejected(self):
        from repro.channel import register_channel

        with pytest.raises(ValueError, match="already registered"):
            register_channel("simulator")(lambda **kwargs: None)

    def test_baseline_requires_fit_data(self, params):
        with pytest.raises(ValueError, match="not fitted"):
            build_channel("gaussian", params=params)
