"""Tests for constrained-system capacity and time-aware code selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    ConstraintOperatingPoint,
    TimeAwareCodeSelector,
    constraint_adjacency_matrix,
    constraint_capacity,
    constraint_tradeoff_curve,
    ici_constraint_capacity,
    ici_forbidden_patterns,
    rate_penalty,
)
from repro.flash import BlockGeometry, FlashChannel


@pytest.fixture
def channel() -> FlashChannel:
    return FlashChannel(geometry=BlockGeometry(32, 32),
                        rng=np.random.default_rng(0))


class TestForbiddenPatterns:
    def test_counts(self):
        # high_level=6 forbids neighbours in {6, 7}: 2 x 2 patterns.
        assert len(ici_forbidden_patterns(6)) == 4
        assert len(ici_forbidden_patterns(7)) == 1
        assert len(ici_forbidden_patterns(5)) == 9

    def test_victim_is_always_the_requested_level(self):
        patterns = ici_forbidden_patterns(6, victim_level=1)
        assert all(pattern[1] == 1 for pattern in patterns)

    def test_validation(self):
        with pytest.raises(ValueError):
            ici_forbidden_patterns(0)
        with pytest.raises(ValueError):
            ici_forbidden_patterns(8)
        with pytest.raises(ValueError):
            ici_forbidden_patterns(6, victim_level=9)


class TestAdjacencyMatrix:
    def test_unconstrained_graph_is_complete_on_pairs(self):
        adjacency = constraint_adjacency_matrix([], num_levels=4)
        assert adjacency.shape == (16, 16)
        # Each pair state (a, b) has exactly num_levels outgoing edges.
        np.testing.assert_array_equal(adjacency.sum(axis=1), 4)

    def test_forbidden_pattern_removes_one_edge(self):
        free = constraint_adjacency_matrix([], num_levels=4)
        constrained = constraint_adjacency_matrix([(3, 0, 3)], num_levels=4)
        assert free.sum() - constrained.sum() == 1
        assert constrained[3 * 4 + 0, 0 * 4 + 3] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            constraint_adjacency_matrix([], num_levels=1)
        with pytest.raises(ValueError):
            constraint_adjacency_matrix([(1, 2)], num_levels=4)
        with pytest.raises(ValueError):
            constraint_adjacency_matrix([(9, 0, 9)], num_levels=8)


class TestCapacity:
    def test_unconstrained_capacity_is_log2_levels(self):
        assert constraint_capacity([], num_levels=8) == pytest.approx(3.0)
        assert constraint_capacity([], num_levels=4) == pytest.approx(2.0)

    def test_constraint_reduces_capacity(self):
        assert ici_constraint_capacity(6) < 3.0

    def test_stronger_constraints_cost_more(self):
        capacities = [ici_constraint_capacity(high) for high in (7, 6, 5, 4)]
        assert capacities == sorted(capacities, reverse=True)

    def test_ici_constraints_are_cheap(self):
        """Forbidding a handful of 512 patterns costs well under 1% of rate."""
        assert rate_penalty(6) < 0.01
        assert rate_penalty(7) < rate_penalty(6) < rate_penalty(5)

    def test_rate_penalty_bounds(self):
        for high_level in (5, 6, 7):
            assert 0.0 < rate_penalty(high_level) < 1.0

    def test_binary_no_11_constraint_matches_golden_ratio(self):
        """Sanity-check against the textbook (d, k) = (1, inf) RLL capacity."""
        forbidden = [(a, 1, 1) for a in range(2)] + [(1, 1, a) for a in range(2)]
        capacity = constraint_capacity(forbidden, num_levels=2)
        golden = np.log2((1 + np.sqrt(5)) / 2)
        assert capacity == pytest.approx(golden, abs=0.02)

    @settings(max_examples=15, deadline=None)
    @given(high_level=st.integers(min_value=1, max_value=7))
    def test_capacity_always_between_zero_and_three(self, high_level):
        capacity = ici_constraint_capacity(high_level)
        assert 0.0 < capacity <= 3.0


class TestTradeoffCurve:
    def test_first_point_is_unconstrained(self, channel):
        points = constraint_tradeoff_curve(channel, 7000, num_blocks=2)
        assert points[0].is_unconstrained
        assert points[0].rate_penalty == 0.0

    def test_constraints_reduce_error_rate(self, channel):
        points = constraint_tradeoff_curve(channel, 10000,
                                           high_levels=(5,), num_blocks=4)
        unconstrained, constrained = points
        assert constrained.error_rate < unconstrained.error_rate
        assert constrained.rate_penalty > 0.0

    def test_erased_metric_shows_strong_constraint_gain(self, channel):
        """On the victim population the constraint's benefit is unambiguous."""
        points = constraint_tradeoff_curve(channel, 10000,
                                           high_levels=(5,), num_blocks=4,
                                           metric="erased")
        unconstrained, constrained = points
        assert constrained.error_rate < 0.7 * unconstrained.error_rate

    def test_validation(self, channel):
        with pytest.raises(ValueError):
            constraint_tradeoff_curve(channel, 7000, num_blocks=0)
        with pytest.raises(ValueError):
            constraint_tradeoff_curve(channel, 7000, metric="bogus",
                                      num_blocks=1)


class TestTimeAwareCodeSelector:
    def test_lenient_target_needs_no_constraint(self, channel):
        selector = TimeAwareCodeSelector(channel, error_rate_target=0.5,
                                         num_blocks=2)
        point = selector.select(4000)
        assert point.is_unconstrained
        assert point.rate_penalty == 0.0

    def test_impossible_target_returns_strongest_constraint(self, channel):
        selector = TimeAwareCodeSelector(channel, error_rate_target=1e-9,
                                         high_levels=(7, 6, 5), num_blocks=2)
        point = selector.select(10000)
        assert point.high_level == 5
        assert point.error_rate > selector.error_rate_target

    def test_schedule_covers_all_read_points(self, channel):
        selector = TimeAwareCodeSelector(channel, error_rate_target=0.5,
                                         num_blocks=2)
        schedule = selector.schedule((4000, 7000, 10000))
        assert [point.pe_cycles for point in schedule] == [4000, 7000, 10000]

    def test_constraint_strength_never_relaxes_with_wear(self, channel):
        """Later read points need an equal or stronger constraint."""
        selector = TimeAwareCodeSelector(channel, error_rate_target=2.4e-3,
                                         high_levels=(7, 6, 5), num_blocks=4)
        schedule = selector.schedule((4000, 10000))
        strength = {None: 0, 7: 1, 6: 2, 5: 3}
        assert strength[schedule[1].high_level] >= strength[schedule[0].high_level]

    def test_cache_avoids_remeasuring(self, channel):
        selector = TimeAwareCodeSelector(channel, error_rate_target=0.5,
                                         num_blocks=2)
        first = selector.select(7000)
        second = selector.select(7000)
        assert first.error_rate == second.error_rate

    def test_erased_metric_escalates_with_wear(self, channel):
        """With a budget between the 4000 and 10000 victim rates, the selector
        uses no constraint early and a real constraint at end of life."""
        selector = TimeAwareCodeSelector(channel, error_rate_target=1.4e-2,
                                         high_levels=(7, 6, 5), num_blocks=4,
                                         metric="erased")
        early = selector.select(4000)
        late = selector.select(10000)
        assert early.rate_penalty <= late.rate_penalty
        assert not late.is_unconstrained

    def test_validation(self, channel):
        with pytest.raises(ValueError):
            TimeAwareCodeSelector(channel, error_rate_target=0.0)
        with pytest.raises(ValueError):
            TimeAwareCodeSelector(channel, error_rate_target=0.1,
                                  high_levels=())
        with pytest.raises(ValueError):
            TimeAwareCodeSelector(channel, error_rate_target=0.1,
                                  num_blocks=0)
        with pytest.raises(ValueError):
            TimeAwareCodeSelector(channel, error_rate_target=0.1,
                                  metric="bogus")
        selector = TimeAwareCodeSelector(channel, error_rate_target=0.1)
        with pytest.raises(ValueError):
            selector.schedule(())

    def test_operating_point_flags(self):
        constrained = ConstraintOperatingPoint(pe_cycles=1.0, high_level=6,
                                               error_rate=0.1,
                                               rate_penalty=0.001)
        assert not constrained.is_unconstrained
