"""Tests for the ICI-mitigating constrained code."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    ICIConstrainedCode,
    constrained_coding_gain,
    forbidden_pattern_positions,
    has_forbidden_pattern,
)
from repro.flash import BlockGeometry, FlashChannel


@pytest.fixture
def block_with_pattern():
    levels = np.zeros((5, 5), dtype=int)
    levels[1, 2] = 7
    levels[3, 2] = 7          # (2, 2) is a 7-0-7 victim in the BL direction
    return levels


class TestForbiddenPatterns:
    def test_detects_bitline_high_low_high(self, block_with_pattern):
        mask = forbidden_pattern_positions(block_with_pattern)
        assert mask[2, 2]
        assert mask.sum() == 1

    def test_wordline_pattern_not_flagged(self):
        levels = np.zeros((5, 5), dtype=int)
        levels[2, 1] = 7
        levels[2, 3] = 7       # WL direction only
        assert not has_forbidden_pattern(levels)

    def test_threshold_level_respected(self, block_with_pattern):
        assert has_forbidden_pattern(block_with_pattern, high_level=7)
        block_with_pattern[1, 2] = 5
        assert not has_forbidden_pattern(block_with_pattern, high_level=6)
        assert has_forbidden_pattern(block_with_pattern, high_level=5)

    def test_programmed_victim_not_flagged(self, block_with_pattern):
        block_with_pattern[2, 2] = 3
        assert not has_forbidden_pattern(block_with_pattern)

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            forbidden_pattern_positions(np.zeros(5, dtype=int))

    def test_rejects_bad_high_level(self):
        with pytest.raises(ValueError):
            forbidden_pattern_positions(np.zeros((3, 3), dtype=int),
                                        high_level=0)


class TestICIConstrainedCode:
    def test_encode_removes_all_forbidden_patterns(self, rng=None):
        generator = np.random.default_rng(3)
        code = ICIConstrainedCode()
        levels = generator.integers(0, 8, size=(64, 64))
        encoded, _ = code.encode(levels)
        assert not has_forbidden_pattern(encoded, code.high_level)

    def test_encode_decode_roundtrip(self):
        generator = np.random.default_rng(4)
        code = ICIConstrainedCode()
        levels = generator.integers(0, 8, size=(32, 32))
        encoded, lifted = code.encode(levels)
        np.testing.assert_array_equal(code.decode(encoded, lifted), levels)

    def test_encode_only_touches_victims(self, block_with_pattern):
        code = ICIConstrainedCode()
        encoded, lifted = code.encode(block_with_pattern)
        assert lifted.sum() == 1
        assert encoded[2, 2] == code.lift_to
        untouched = ~lifted
        np.testing.assert_array_equal(encoded[untouched],
                                      block_with_pattern[untouched])

    def test_overhead_between_zero_and_one(self):
        generator = np.random.default_rng(5)
        code = ICIConstrainedCode()
        _, lifted = code.encode(generator.integers(0, 8, size=(64, 64)))
        assert 0.0 <= code.overhead(lifted) <= 0.05

    def test_decode_rejects_mismatched_mask(self):
        code = ICIConstrainedCode()
        with pytest.raises(ValueError):
            code.decode(np.zeros((4, 4), dtype=int), np.zeros((3, 3), dtype=bool))

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ICIConstrainedCode(high_level=0)
        with pytest.raises(ValueError):
            ICIConstrainedCode(lift_to=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        generator = np.random.default_rng(seed)
        code = ICIConstrainedCode()
        levels = generator.integers(0, 8, size=(16, 16))
        encoded, lifted = code.encode(levels)
        assert not has_forbidden_pattern(encoded, code.high_level)
        np.testing.assert_array_equal(code.decode(encoded, lifted), levels)


class TestCodingGain:
    def test_constrained_code_reduces_errors_on_worn_device(self):
        channel = FlashChannel(geometry=BlockGeometry(64, 64),
                               rng=np.random.default_rng(6))
        result = constrained_coding_gain(channel, 10000, num_blocks=12)
        assert result.coded_error_rate < result.uncoded_error_rate
        assert 0.0 < result.gain < 1.0
        assert result.overhead < 0.05

    def test_rejects_zero_blocks(self):
        channel = FlashChannel(rng=np.random.default_rng(7))
        with pytest.raises(ValueError):
            constrained_coding_gain(channel, 4000, num_blocks=0)
