"""Suite-wide fixtures."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def cjit_backend(tmp_path_factory):
    """One compiled-kernel backend shared by the whole session.

    Session-scoped so every test shares the in-process kernel memo and the
    on-disk cache directory — each distinct kernel compiles at most once
    per test run, and nothing is ever written into the repository tree.
    On hosts without a C compiler the instance still constructs; tests that
    need compiled kernels skip via ``cjit_available()``.
    """
    from repro.nn.cjit import CJitBackend

    return CJitBackend(cache_dir=tmp_path_factory.mktemp("kernel-cache"))
