"""Shared fixtures for the conditional generative model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelConfig
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(31)


@pytest.fixture
def tiny_config() -> ModelConfig:
    return ModelConfig.tiny()


@pytest.fixture(scope="module")
def tiny_dataset():
    """A small 8x8 paired dataset shared by the training tests."""
    channel = FlashChannel(geometry=BlockGeometry(16, 16),
                           rng=np.random.default_rng(5))
    return generate_paired_dataset(channel, pe_cycles=(4000, 10000),
                                   arrays_per_pe=12, array_size=8)
