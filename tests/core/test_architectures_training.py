"""Tests for the four architectures, the trainer and the inference wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BicycleGAN,
    ConditionalGAN,
    ConditionalVAE,
    ConditionalVAEGAN,
    GenerativeChannelModel,
    MODEL_REGISTRY,
    ModelConfig,
    Trainer,
    build_model,
)
from repro.nn import Tensor

ALL_ARCHITECTURES = ("cvae_gan", "cgan", "cvae", "bicycle_gan")


def _batch(config, batch=4, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    size = config.array_size
    program = Tensor(rng.uniform(-1, 1, size=(batch, 1, size, size)))
    voltages = Tensor(rng.uniform(-1, 1, size=(batch, 1, size, size)))
    pe = rng.uniform(0.3, 1.0, size=batch)
    return program, voltages, pe


class TestZoo:
    def test_registry_contains_remark3_architectures(self):
        assert set(MODEL_REGISTRY) == set(ALL_ARCHITECTURES)

    def test_build_model_unknown_name(self):
        with pytest.raises(ValueError):
            build_model("stylegan")

    def test_build_model_returns_requested_class(self, tiny_config, rng):
        assert isinstance(build_model("cvae_gan", tiny_config, rng=rng),
                          ConditionalVAEGAN)
        assert isinstance(build_model("cgan", tiny_config, rng=rng),
                          ConditionalGAN)
        assert isinstance(build_model("cvae", tiny_config, rng=rng),
                          ConditionalVAE)
        assert isinstance(build_model("bicycle_gan", tiny_config, rng=rng),
                          BicycleGAN)

    def test_display_names(self):
        assert ConditionalVAEGAN.display_name == "cV-G"
        assert ConditionalGAN.display_name == "cGAN"


class TestArchitectureLosses:
    @pytest.mark.parametrize("name", ALL_ARCHITECTURES)
    def test_generator_loss_finite_and_reported(self, name, tiny_config, rng):
        model = build_model(name, tiny_config, rng=rng)
        program, voltages, pe = _batch(tiny_config)
        loss, stats = model.generator_loss(program, voltages, pe, rng)
        assert np.isfinite(loss.item())
        assert stats["g_total"] == pytest.approx(loss.item())

    @pytest.mark.parametrize("name", ["cvae_gan", "cgan", "bicycle_gan"])
    def test_discriminator_loss_finite(self, name, tiny_config, rng):
        model = build_model(name, tiny_config, rng=rng)
        program, voltages, pe = _batch(tiny_config)
        loss, stats = model.discriminator_loss(program, voltages, pe, rng)
        assert np.isfinite(loss.item())
        assert "d_total" in stats

    def test_cvae_has_no_discriminator(self, tiny_config, rng):
        model = build_model("cvae", tiny_config, rng=rng)
        assert not model.has_discriminator
        assert model.discriminator_loss(*_batch(tiny_config), rng) is None

    @pytest.mark.parametrize("name", ["cvae_gan", "cgan", "bicycle_gan"])
    def test_parameter_groups_disjoint(self, name, tiny_config, rng):
        model = build_model(name, tiny_config, rng=rng)
        generator_ids = {id(p) for p in model.generator_parameters()}
        discriminator_ids = {id(p) for p in model.discriminator_parameters()}
        assert not generator_ids & discriminator_ids

    def test_cvae_gan_kl_term_in_stats(self, tiny_config, rng):
        model = build_model("cvae_gan", tiny_config, rng=rng)
        _, stats = model.generator_loss(*_batch(tiny_config), rng)
        assert "g_kl" in stats and "g_reconstruction" in stats

    def test_bicycle_gan_has_latent_regression(self, tiny_config, rng):
        model = build_model("bicycle_gan", tiny_config, rng=rng)
        _, stats = model.generator_loss(*_batch(tiny_config), rng)
        assert "g_latent_regression" in stats

    @pytest.mark.parametrize("name", ALL_ARCHITECTURES)
    def test_sample_shape_and_range(self, name, tiny_config, rng):
        model = build_model(name, tiny_config, rng=rng)
        size = tiny_config.array_size
        program = np.random.default_rng(0).uniform(-1, 1, size=(3, 1, size, size))
        sample = model.sample(program, np.full(3, 0.7), rng)
        assert sample.shape == (3, 1, size, size)
        assert np.all(np.abs(sample) <= 1.0)

    def test_sample_respects_fixed_latent(self, tiny_config, rng):
        model = build_model("cvae_gan", tiny_config, rng=rng)
        size = tiny_config.array_size
        program = np.zeros((2, 1, size, size))
        latent = np.ones((2, tiny_config.latent_dim))
        first = model.sample(program, np.full(2, 0.5),
                             np.random.default_rng(1), latent=latent)
        second = model.sample(program, np.full(2, 0.5),
                              np.random.default_rng(2), latent=latent)
        np.testing.assert_allclose(first, second)

    def test_sample_keeps_training_mode(self, tiny_config, rng):
        model = build_model("cvae_gan", tiny_config, rng=rng)
        model.train()
        size = tiny_config.array_size
        model.sample(np.zeros((1, 1, size, size)), np.array([0.5]), rng)
        assert model.training

    def test_encode_returns_posterior(self, tiny_config, rng):
        model = build_model("cvae_gan", tiny_config, rng=rng)
        size = tiny_config.array_size
        mu, logvar = model.encode(np.zeros((2, 1, size, size)), np.full(2, 0.4))
        assert mu.shape == (2, tiny_config.latent_dim)
        assert logvar.shape == (2, tiny_config.latent_dim)


class TestTrainer:
    @pytest.mark.parametrize("name", ALL_ARCHITECTURES)
    def test_single_step_updates_parameters(self, name, tiny_config,
                                            tiny_dataset, rng):
        model = build_model(name, tiny_config, rng=rng)
        trainer = Trainer(model, tiny_dataset, rng=np.random.default_rng(3))
        before = [p.data.copy() for p in model.generator_parameters()]
        trainer.train_step(*tiny_dataset[0:4])
        after = model.generator_parameters()
        assert any(not np.allclose(b, a.data) for b, a in zip(before, after))

    def test_history_records_steps(self, tiny_config, tiny_dataset):
        model = build_model("cvae", tiny_config, rng=np.random.default_rng(1))
        trainer = Trainer(model, tiny_dataset, rng=np.random.default_rng(2),
                          max_steps_per_epoch=2)
        history = trainer.train(epochs=2)
        assert history.num_steps == 4
        assert history.last("g_total") > 0
        assert history.mean("g_total") > 0

    def test_history_unknown_key(self, tiny_config, tiny_dataset):
        model = build_model("cvae", tiny_config, rng=np.random.default_rng(1))
        trainer = Trainer(model, tiny_dataset, rng=np.random.default_rng(2),
                          max_steps_per_epoch=1)
        history = trainer.train(epochs=1)
        with pytest.raises(KeyError):
            history.last("nonexistent")

    def test_training_reduces_reconstruction_loss(self, tiny_config,
                                                  tiny_dataset):
        """A short cVAE run must reduce the reconstruction loss."""
        model = build_model("cvae", tiny_config, rng=np.random.default_rng(7))
        trainer = Trainer(model, tiny_dataset, rng=np.random.default_rng(8))
        history = trainer.train(epochs=8)
        first = np.mean([s["g_reconstruction"]
                         for s in history.generator[:3]])
        last = np.mean([s["g_reconstruction"]
                        for s in history.generator[-3:]])
        assert last < first

    def test_epoch_summary_contains_means(self, tiny_config, tiny_dataset):
        model = build_model("cvae_gan", tiny_config,
                            rng=np.random.default_rng(1))
        trainer = Trainer(model, tiny_dataset, rng=np.random.default_rng(2),
                          max_steps_per_epoch=2)
        summary = trainer.train_epoch()
        assert "g_total" in summary and "d_total" in summary


class TestGenerativeChannelModel:
    @pytest.fixture(scope="class")
    def wrapper(self):
        config = ModelConfig.tiny()
        model = build_model("cvae_gan", config, rng=np.random.default_rng(9))
        return GenerativeChannelModel(model, rng=np.random.default_rng(10))

    def test_read_single_array(self, wrapper):
        program = np.random.default_rng(0).integers(0, 8, size=(8, 8))
        voltages = wrapper.read(program, 7000)
        assert voltages.shape == (8, 8)
        assert voltages.min() >= 0.0 and voltages.max() <= 650.0

    def test_read_batched_arrays(self, wrapper):
        program = np.random.default_rng(0).integers(0, 8, size=(5, 8, 8))
        voltages = wrapper.read(program, 4000)
        assert voltages.shape == (5, 8, 8)

    def test_read_rejects_wrong_size(self, wrapper):
        with pytest.raises(ValueError):
            wrapper.read(np.zeros((16, 16), dtype=int), 4000)

    def test_read_rejects_wrong_rank(self, wrapper):
        with pytest.raises(ValueError):
            wrapper.read(np.zeros(8, dtype=int), 4000)

    def test_read_repeated_default_samples(self, wrapper):
        program = np.zeros((8, 8), dtype=int)
        repeated = wrapper.read_repeated(program, 7000)
        assert repeated.shape == (wrapper.model.config.samples_per_array, 8, 8)

    def test_read_repeated_rejects_zero_samples(self, wrapper):
        with pytest.raises(ValueError):
            wrapper.read_repeated(np.zeros((8, 8), dtype=int), 7000,
                                  num_samples=0)

    def test_repeated_reads_differ(self, wrapper):
        """Different latent samples yield different voltage arrays."""
        program = np.random.default_rng(1).integers(0, 8, size=(8, 8))
        repeated = wrapper.read_repeated(program, 7000, num_samples=2)
        assert not np.allclose(repeated[0], repeated[1])
