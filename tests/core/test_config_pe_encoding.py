"""Tests for the model configuration and the spatio-temporal P/E encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModelConfig, concat_condition, pe_feature_vector, spatial_replicate
from repro.core.pe_encoding import replicate_latent
from repro.nn import Tensor


class TestModelConfig:
    def test_paper_configuration_matches_remark1_and_2(self):
        config = ModelConfig.paper()
        assert config.array_size == 64
        assert config.down_channels == (64, 128, 256, 512, 512, 512)
        assert config.latent_dim == 6
        assert config.pe_dim == 6
        assert config.learning_rate == pytest.approx(2e-4)
        assert config.alpha == pytest.approx(10.0)
        assert config.beta == pytest.approx(0.01)
        assert config.batch_size == 2
        assert config.epochs == 7
        assert config.samples_per_array == 10

    def test_small_configuration_depth_matches_array_size(self):
        config = ModelConfig.small(16)
        assert config.array_size == 16
        assert len(config.down_channels) == 4

    def test_tiny_configuration_valid(self):
        config = ModelConfig.tiny()
        assert config.array_size == 8
        assert config.num_down_layers == 3

    def test_rejects_non_power_of_two_array(self):
        with pytest.raises(ValueError):
            ModelConfig(array_size=48, down_channels=(8, 8, 8, 8, 8))

    def test_rejects_depth_mismatch(self):
        with pytest.raises(ValueError):
            ModelConfig(array_size=16, down_channels=(8, 8))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            ModelConfig.small(16).__class__(
                array_size=16, down_channels=(8, 8, 8, 8), learning_rate=0.0)
        with pytest.raises(ValueError):
            ModelConfig(array_size=8, down_channels=(8, 8, 8), alpha=-1.0)
        with pytest.raises(ValueError):
            ModelConfig(array_size=8, down_channels=(8, 8, 8), batch_size=0)
        with pytest.raises(ValueError):
            ModelConfig(array_size=8, down_channels=(8, 8, 8), latent_dim=0)

    def test_config_is_frozen(self):
        config = ModelConfig.tiny()
        with pytest.raises(AttributeError):
            config.alpha = 5.0


class TestPEFeatureVector:
    def test_shape(self):
        features = pe_feature_vector(np.array([0.4, 0.7, 1.0]), pe_dim=6)
        assert features.shape == (3, 6)

    def test_scalar_input(self):
        assert pe_feature_vector(0.4, pe_dim=4).shape == (1, 4)

    def test_contains_identity_square_and_sqrt(self):
        features = pe_feature_vector(np.array([0.25]), pe_dim=3)[0]
        assert features[0] == pytest.approx(0.25)      # identity
        assert features[1] == pytest.approx(0.0625)    # square
        assert features[2] == pytest.approx(0.5)       # square root

    def test_distinct_pe_counts_have_distinct_features(self):
        features = pe_feature_vector(np.array([0.4, 0.7, 1.0]), pe_dim=6)
        assert len({tuple(row) for row in features}) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pe_feature_vector(np.array([-0.1]))

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            pe_feature_vector(np.array([0.5]), pe_dim=0)
        with pytest.raises(ValueError):
            pe_feature_vector(np.array([0.5]), pe_dim=99)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            pe_feature_vector(np.zeros((2, 2)))

    @given(st.floats(0.0, 2.0), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_features_finite_and_nonnegative(self, value, dim):
        features = pe_feature_vector(np.array([value]), pe_dim=dim)
        assert np.all(np.isfinite(features))
        assert np.all(features >= 0)

    def test_monotone_in_pe(self):
        """Each feature grows with the P/E cycle count (wear only increases)."""
        low = pe_feature_vector(np.array([0.4]), pe_dim=6)[0]
        high = pe_feature_vector(np.array([1.0]), pe_dim=6)[0]
        assert np.all(high >= low)


class TestSpatialReplication:
    def test_spatial_replicate_shape_and_values(self):
        vector = np.array([[1.0, 2.0], [3.0, 4.0]])
        replicated = spatial_replicate(vector, 3, 5)
        assert replicated.shape == (2, 2, 3, 5)
        assert np.all(replicated[0, 1] == 2.0)
        assert np.all(replicated[1, 0] == 3.0)

    def test_spatial_replicate_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            spatial_replicate(np.zeros(3), 2, 2)
        with pytest.raises(ValueError):
            spatial_replicate(np.zeros((2, 3)), 0, 2)

    def test_concat_condition_adds_channels(self):
        features = Tensor(np.zeros((2, 4, 8, 8)))
        condition = np.ones((2, 6))
        combined = concat_condition(features, condition)
        assert combined.shape == (2, 10, 8, 8)
        assert np.all(combined.data[:, 4:] == 1.0)

    def test_concat_condition_accepts_precomputed_map(self):
        features = Tensor(np.zeros((2, 4, 8, 8)))
        condition = np.ones((2, 3, 8, 8))
        assert concat_condition(features, condition).shape == (2, 7, 8, 8)

    def test_concat_condition_rejects_mismatched_batch(self):
        features = Tensor(np.zeros((2, 4, 8, 8)))
        with pytest.raises(ValueError):
            concat_condition(features, np.ones((3, 6)))

    def test_replicate_latent_preserves_gradient_flow(self):
        latent = Tensor(np.array([[1.0, -1.0]]), requires_grad=True)
        replicated = replicate_latent(latent, 4, 4)
        assert replicated.shape == (1, 2, 4, 4)
        replicated.sum().backward()
        np.testing.assert_allclose(latent.grad, [[16.0, 16.0]])

    def test_replicate_latent_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            replicate_latent(Tensor(np.zeros(3)), 2, 2)
        with pytest.raises(ValueError):
            replicate_latent(Tensor(np.zeros((1, 3))), 0, 2)
