"""Tests for the encoder, generator and discriminator networks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ModelConfig,
    PatchGANDiscriminator,
    ResNetEncoder,
    UNetGenerator,
)
from repro.core.encoder import ResidualBlock
from repro.nn import Tensor


@pytest.fixture
def config():
    return ModelConfig.tiny()


def _inputs(config, batch=2, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    size = config.array_size
    program = Tensor(rng.uniform(-1, 1, size=(batch, 1, size, size)))
    voltages = Tensor(rng.uniform(-1, 1, size=(batch, 1, size, size)))
    pe = rng.uniform(0.3, 1.0, size=batch)
    latent = Tensor(rng.standard_normal((batch, config.latent_dim)))
    return program, voltages, pe, latent


class TestResidualBlock:
    def test_preserves_shape(self, rng):
        block = ResidualBlock(8, rng=rng)
        x = Tensor(rng.standard_normal((2, 8, 6, 6)))
        assert block(x).shape == x.shape

    def test_gradients_reach_input(self, rng):
        block = ResidualBlock(4, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 6, 6)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)


class TestEncoder:
    def test_output_shapes(self, config, rng):
        encoder = ResNetEncoder(config, rng=rng)
        _, voltages, pe, _ = _inputs(config)
        mu, logvar = encoder(voltages, pe)
        assert mu.shape == (2, config.latent_dim)
        assert logvar.shape == (2, config.latent_dim)

    def test_latent_sampling_shape_and_stochasticity(self, config, rng):
        encoder = ResNetEncoder(config, rng=rng)
        _, voltages, pe, _ = _inputs(config)
        mu, logvar = encoder(voltages, pe)
        sample_a = encoder.sample_latent(mu, logvar, np.random.default_rng(1))
        sample_b = encoder.sample_latent(mu, logvar, np.random.default_rng(2))
        assert sample_a.shape == mu.shape
        assert not np.allclose(sample_a.data, sample_b.data)

    def test_pe_conditioning_changes_output(self, config, rng):
        encoder = ResNetEncoder(config, rng=rng)
        encoder.eval()
        _, voltages, _, _ = _inputs(config)
        mu_low, _ = encoder(voltages, np.array([0.4, 0.4]))
        mu_high, _ = encoder(voltages, np.array([1.0, 1.0]))
        assert not np.allclose(mu_low.data, mu_high.data)

    def test_gradients_flow_to_parameters(self, config, rng):
        encoder = ResNetEncoder(config, rng=rng)
        _, voltages, pe, _ = _inputs(config)
        mu, logvar = encoder(voltages, pe)
        (mu.sum() + logvar.sum()).backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestGenerator:
    def test_output_shape_matches_input(self, config, rng):
        generator = UNetGenerator(config, rng=rng)
        program, _, pe, latent = _inputs(config)
        out = generator(program, pe, latent)
        assert out.shape == program.shape

    def test_output_bounded_by_tanh(self, config, rng):
        generator = UNetGenerator(config, rng=rng)
        program, _, pe, latent = _inputs(config)
        out = generator(program, pe, latent)
        assert np.all(np.abs(out.data) <= 1.0)

    def test_paper_scale_shapes(self, rng):
        """The Remark 1 architecture maps 64x64 arrays to 64x64 arrays."""
        generator = UNetGenerator(ModelConfig.paper(), rng=rng)
        program = Tensor(rng.uniform(-1, 1, size=(1, 1, 64, 64)))
        latent = Tensor(rng.standard_normal((1, 6)))
        generator.eval()
        out = generator(program, np.array([0.7]), latent)
        assert out.shape == (1, 1, 64, 64)

    def test_rejects_wrong_array_size(self, config, rng):
        generator = UNetGenerator(config, rng=rng)
        program = Tensor(np.zeros((1, 1, 16, 16)))
        latent = Tensor(np.zeros((1, config.latent_dim)))
        with pytest.raises(ValueError):
            generator(program, np.array([0.5]), latent)

    def test_latent_changes_output(self, config, rng):
        generator = UNetGenerator(config, rng=rng)
        generator.eval()
        program, _, pe, _ = _inputs(config)
        out_a = generator(program, pe, Tensor(np.full((2, config.latent_dim), -2.0)))
        out_b = generator(program, pe, Tensor(np.full((2, config.latent_dim), 2.0)))
        assert not np.allclose(out_a.data, out_b.data)

    def test_pe_changes_output(self, config, rng):
        """The spatio-temporal combination must make the output P/E dependent."""
        generator = UNetGenerator(config, rng=rng)
        generator.eval()
        program, _, _, latent = _inputs(config)
        out_low = generator(program, np.array([0.4, 0.4]), latent)
        out_high = generator(program, np.array([1.0, 1.0]), latent)
        assert not np.allclose(out_low.data, out_high.data)

    def test_pe_conditioning_can_be_disabled(self, config, rng):
        generator = UNetGenerator(config, rng=rng, condition_on_pe=False)
        generator.eval()
        program, _, _, latent = _inputs(config)
        out_low = generator(program, np.array([0.4, 0.4]), latent)
        out_high = generator(program, np.array([1.0, 1.0]), latent)
        np.testing.assert_allclose(out_low.data, out_high.data)

    def test_gradients_flow_to_latent(self, config, rng):
        generator = UNetGenerator(config, rng=rng)
        program, _, pe, _ = _inputs(config)
        latent = Tensor(np.zeros((2, config.latent_dim)), requires_grad=True)
        generator(program, pe, latent).sum().backward()
        assert latent.grad is not None
        assert np.any(latent.grad != 0)

    def test_parameter_count_grows_with_width(self, rng):
        narrow = UNetGenerator(ModelConfig.tiny(), rng=rng)
        wide = UNetGenerator(ModelConfig.small(16), rng=rng)
        assert wide.num_parameters() > narrow.num_parameters()


class TestDiscriminator:
    def test_patch_output_shape(self, config, rng):
        discriminator = PatchGANDiscriminator(config, rng=rng)
        program, voltages, _, _ = _inputs(config)
        logits = discriminator(program, voltages)
        assert logits.shape[0] == 2 and logits.shape[1] == 1

    def test_patch_output_is_spatial_map_at_paper_like_scale(self, rng):
        """On 16x16 (and larger) inputs the output is a patch map, not a scalar."""
        config = ModelConfig.small(16)
        discriminator = PatchGANDiscriminator(config, rng=rng)
        program, voltages, _, _ = _inputs(config)
        logits = discriminator(program, voltages)
        assert logits.shape[2] > 1 and logits.shape[3] > 1

    def test_rejects_shape_mismatch(self, config, rng):
        discriminator = PatchGANDiscriminator(config, rng=rng)
        program = Tensor(np.zeros((2, 1, 8, 8)))
        voltages = Tensor(np.zeros((2, 1, 4, 4)))
        with pytest.raises(ValueError):
            discriminator(program, voltages)

    def test_depends_on_both_inputs(self, config, rng):
        discriminator = PatchGANDiscriminator(config, rng=rng)
        discriminator.eval()
        program, voltages, _, _ = _inputs(config)
        base = discriminator(program, voltages).data
        shifted_voltage = discriminator(program, voltages * 0.5).data
        shifted_program = discriminator(program * 0.5, voltages).data
        assert not np.allclose(base, shifted_voltage)
        assert not np.allclose(base, shifted_program)

    def test_gradients_flow(self, config, rng):
        discriminator = PatchGANDiscriminator(config, rng=rng)
        program, voltages, _, _ = _inputs(config)
        discriminator(program, voltages).sum().backward()
        assert all(p.grad is not None for p in discriminator.parameters())
