"""Tests for dataset generation, cropping, normalisation and batching."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BatchIterator,
    FlashChannelDataset,
    LevelNormalizer,
    PENormalizer,
    VoltageNormalizer,
    crop_blocks,
    generate_paired_dataset,
)
from repro.flash import BlockGeometry, FlashChannel, FlashParameters
from repro.flash.cell import NUM_LEVELS


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def channel(rng):
    return FlashChannel(geometry=BlockGeometry(32, 32), rng=rng)


@pytest.fixture
def dataset(channel):
    return generate_paired_dataset(channel, pe_cycles=(4000, 10000),
                                   arrays_per_pe=8, array_size=16)


class TestCropBlocks:
    def test_exact_tiling(self, rng):
        blocks = rng.integers(0, 8, size=(2, 32, 32))
        crops = crop_blocks(blocks, 16)
        assert crops.shape == (2 * 4, 16, 16)

    def test_crops_are_non_overlapping_and_cover_block(self, rng):
        blocks = np.arange(64).reshape(1, 8, 8)
        crops = crop_blocks(blocks, 4)
        assert crops.shape == (4, 4, 4)
        np.testing.assert_array_equal(np.sort(crops.ravel()), np.arange(64))

    def test_partial_tiles_discarded(self, rng):
        blocks = rng.integers(0, 8, size=(1, 10, 10))
        crops = crop_blocks(blocks, 4)
        assert crops.shape == (4, 4, 4)

    def test_first_crop_is_top_left_corner(self, rng):
        blocks = rng.integers(0, 8, size=(1, 8, 8))
        crops = crop_blocks(blocks, 4)
        np.testing.assert_array_equal(crops[0], blocks[0, :4, :4])

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError):
            crop_blocks(rng.integers(0, 8, size=(8, 8)), 4)

    def test_rejects_oversized_crop(self, rng):
        with pytest.raises(ValueError):
            crop_blocks(rng.integers(0, 8, size=(1, 8, 8)), 16)

    def test_rejects_non_positive_crop(self, rng):
        with pytest.raises(ValueError):
            crop_blocks(rng.integers(0, 8, size=(1, 8, 8)), 0)


class TestGeneratePairedDataset:
    def test_dataset_size_and_shapes(self, dataset):
        assert len(dataset) == 16
        assert dataset.array_shape == (16, 16)

    def test_arrays_per_pe(self, dataset):
        summary = dataset.summary()
        assert summary["arrays_per_pe"] == {4000: 8, 10000: 8}

    def test_voltages_reflect_levels(self, dataset):
        """Mean voltage of level-7 cells must exceed that of level-1 cells."""
        high = dataset.voltages[dataset.program_levels == 7].mean()
        low = dataset.voltages[dataset.program_levels == 1].mean()
        assert high > low + 200

    def test_rejects_empty_pe_list(self, channel):
        with pytest.raises(ValueError):
            generate_paired_dataset(channel, pe_cycles=())

    def test_rejects_zero_arrays(self, channel):
        with pytest.raises(ValueError):
            generate_paired_dataset(channel, arrays_per_pe=0)

    def test_rejects_array_size_larger_than_block(self, channel):
        with pytest.raises(ValueError):
            generate_paired_dataset(channel, array_size=64)

    def test_paper_scale_configuration(self, rng):
        """64x64 arrays cropped from 64x64 blocks (one crop per block)."""
        channel = FlashChannel(rng=rng)
        dataset = generate_paired_dataset(channel, pe_cycles=(7000,),
                                          arrays_per_pe=2, array_size=64)
        assert len(dataset) == 2
        assert dataset.array_shape == (64, 64)


class TestFlashChannelDataset:
    def test_getitem(self, dataset):
        program, voltage, pe = dataset[0]
        assert program.shape == (16, 16)
        assert voltage.shape == (16, 16)
        assert pe in (4000.0, 10000.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FlashChannelDataset(np.zeros((2, 4, 4), dtype=int),
                                np.zeros((2, 4, 5)), np.zeros(2))
        with pytest.raises(ValueError):
            FlashChannelDataset(np.zeros((2, 4, 4), dtype=int),
                                np.zeros((2, 4, 4)), np.zeros(3))
        with pytest.raises(ValueError):
            FlashChannelDataset(np.zeros((4, 4), dtype=int),
                                np.zeros((4, 4)), np.zeros(4))

    def test_unique_pe_cycles(self, dataset):
        np.testing.assert_allclose(dataset.unique_pe_cycles, [4000.0, 10000.0])

    def test_filter_pe(self, dataset):
        subset = dataset.filter_pe(4000)
        assert len(subset) == 8
        assert np.all(subset.pe_cycles == 4000)

    def test_filter_pe_missing_value(self, dataset):
        with pytest.raises(ValueError):
            dataset.filter_pe(1234)

    def test_select_preserves_pairs(self, dataset):
        subset = dataset.select(np.array([3, 1]))
        np.testing.assert_array_equal(subset.program_levels[0],
                                      dataset.program_levels[3])
        np.testing.assert_array_equal(subset.voltages[1], dataset.voltages[1])

    def test_train_eval_split_sizes(self, dataset, rng):
        train, evaluation = dataset.train_eval_split(0.25, rng=rng)
        assert len(train) + len(evaluation) == len(dataset)
        assert len(evaluation) == 4  # 25% of 8 arrays per P/E count

    def test_train_eval_split_stratified(self, dataset, rng):
        train, evaluation = dataset.train_eval_split(0.25, rng=rng)
        assert set(train.unique_pe_cycles) == set(dataset.unique_pe_cycles)
        assert set(evaluation.unique_pe_cycles) == set(dataset.unique_pe_cycles)

    def test_train_eval_split_disjoint(self, channel, rng):
        dataset = generate_paired_dataset(channel, pe_cycles=(4000,),
                                          arrays_per_pe=8, array_size=16)
        train, evaluation = dataset.train_eval_split(0.25, rng=rng)
        train_ids = {array.tobytes() for array in train.voltages}
        eval_ids = {array.tobytes() for array in evaluation.voltages}
        assert not train_ids & eval_ids

    def test_train_eval_split_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.train_eval_split(0.0)
        with pytest.raises(ValueError):
            dataset.train_eval_split(1.0)

    def test_summary_fields(self, dataset):
        summary = dataset.summary()
        assert summary["num_arrays"] == 16
        assert summary["array_shape"] == (16, 16)
        assert summary["pe_cycles"] == [4000, 10000]


class TestNormalizers:
    def test_voltage_roundtrip(self, rng):
        normalizer = VoltageNormalizer()
        voltages = rng.uniform(0, 650, size=(4, 4))
        np.testing.assert_allclose(
            normalizer.denormalize(normalizer.normalize(voltages)), voltages)

    def test_voltage_range_maps_to_unit_interval(self):
        params = FlashParameters()
        normalizer = VoltageNormalizer(params)
        assert normalizer.normalize(params.voltage_min) == pytest.approx(-1.0)
        assert normalizer.normalize(params.voltage_max) == pytest.approx(1.0)

    def test_level_normalize_range(self):
        normalizer = LevelNormalizer()
        normalized = normalizer.normalize(np.arange(NUM_LEVELS))
        assert normalized.min() == pytest.approx(-1.0)
        assert normalized.max() == pytest.approx(1.0)

    def test_level_roundtrip(self, rng):
        normalizer = LevelNormalizer()
        levels = rng.integers(0, NUM_LEVELS, size=(5, 5))
        np.testing.assert_array_equal(
            normalizer.denormalize(normalizer.normalize(levels)), levels)

    def test_level_denormalize_clips(self):
        normalizer = LevelNormalizer()
        assert normalizer.denormalize(np.array([1.5]))[0] == 7
        assert normalizer.denormalize(np.array([-1.5]))[0] == 0

    def test_pe_normalizer(self):
        normalizer = PENormalizer(10000)
        assert normalizer.normalize(4000) == pytest.approx(0.4)
        assert normalizer.denormalize(0.7) == pytest.approx(7000)

    def test_pe_normalizer_rejects_bad_reference(self):
        with pytest.raises(ValueError):
            PENormalizer(0)

    @given(st.floats(0.0, 650.0))
    @settings(max_examples=50, deadline=None)
    def test_voltage_normalized_within_unit_interval(self, voltage):
        normalized = VoltageNormalizer().normalize(voltage)
        assert -1.0 <= normalized <= 1.0


class TestBatchIterator:
    def test_number_of_batches(self, dataset, rng):
        iterator = BatchIterator(dataset, batch_size=5, rng=rng)
        assert len(iterator) == 4  # 16 arrays -> 3 full batches + 1 partial

    def test_drop_last(self, dataset, rng):
        iterator = BatchIterator(dataset, batch_size=5, drop_last=True, rng=rng)
        assert len(iterator) == 3
        assert all(batch[0].shape[0] == 5 for batch in iterator)

    def test_batches_cover_dataset(self, dataset, rng):
        iterator = BatchIterator(dataset, batch_size=4, shuffle=True, rng=rng)
        seen = sum(batch[0].shape[0] for batch in iterator)
        assert seen == len(dataset)

    def test_batch_components_aligned(self, dataset, rng):
        """Every (PL, VL, P/E) triple in a batch must stay paired."""
        iterator = BatchIterator(dataset, batch_size=3, shuffle=True, rng=rng)
        originals = {dataset.program_levels[i].tobytes():
                     (dataset.voltages[i].tobytes(), dataset.pe_cycles[i])
                     for i in range(len(dataset))}
        for programs, voltages, pe_values in iterator:
            for program, voltage, pe in zip(programs, voltages, pe_values):
                expected_voltage, expected_pe = originals[program.tobytes()]
                assert voltage.tobytes() == expected_voltage
                assert pe == expected_pe

    def test_no_shuffle_preserves_order(self, dataset):
        iterator = BatchIterator(dataset, batch_size=16, shuffle=False)
        programs, _, _ = next(iter(iterator))
        np.testing.assert_array_equal(programs, dataset.program_levels)

    def test_rejects_empty_dataset(self):
        empty = FlashChannelDataset(np.zeros((0, 4, 4), dtype=int),
                                    np.zeros((0, 4, 4)), np.zeros(0))
        with pytest.raises(ValueError):
            BatchIterator(empty)

    def test_rejects_bad_batch_size(self, dataset):
        with pytest.raises(ValueError):
            BatchIterator(dataset, batch_size=0)
