"""Tests for the binary BCH code."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import BCHCode


@pytest.fixture(scope="module")
def bch_15_7() -> BCHCode:
    """BCH(15, 7) correcting 2 errors."""
    return BCHCode(m=4, t=2)


@pytest.fixture(scope="module")
def bch_63() -> BCHCode:
    """BCH(63, 45) correcting 3 errors."""
    return BCHCode(m=6, t=3)


class TestConstruction:
    def test_classic_code_parameters(self, bch_15_7, bch_63):
        assert (bch_15_7.n, bch_15_7.k, bch_15_7.t) == (15, 7, 2)
        assert (bch_63.n, bch_63.k, bch_63.t) == (63, 45, 3)

    def test_single_error_code_is_hamming(self):
        code = BCHCode(m=4, t=1)
        assert (code.n, code.k) == (15, 11)

    def test_rate_and_describe(self, bch_15_7):
        summary = bch_15_7.describe()
        assert summary["rate"] == pytest.approx(7 / 15)
        assert summary["parity_bits"] == 8

    def test_invalid_t_rejected(self):
        with pytest.raises(ValueError):
            BCHCode(m=4, t=0)

    def test_maximum_t_collapses_to_single_message_bit(self):
        """Asking for t=7 over GF(2^4) leaves the (15, 1) code."""
        code = BCHCode(m=4, t=7)
        assert code.k == 1
        # The single-information-bit code survives huge error patterns.
        codeword = code.encode(np.array([1]))
        assert int(codeword.sum()) >= 2 * code.t + 1

    def test_generator_divides_codewords(self, bch_15_7):
        message = np.ones(bch_15_7.k, dtype=int)
        codeword = bch_15_7.encode(message)
        assert bch_15_7.is_codeword(codeword)


class TestEncoding:
    def test_encoding_is_systematic(self, bch_15_7):
        rng = np.random.default_rng(0)
        message = rng.integers(0, 2, size=bch_15_7.k)
        codeword = bch_15_7.encode(message)
        np.testing.assert_array_equal(
            bch_15_7.message_from_codeword(codeword), message)

    def test_zero_message_encodes_to_zero(self, bch_15_7):
        codeword = bch_15_7.encode(np.zeros(bch_15_7.k, dtype=int))
        assert not codeword.any()

    def test_encoding_is_linear(self, bch_15_7):
        rng = np.random.default_rng(1)
        first = rng.integers(0, 2, size=bch_15_7.k)
        second = rng.integers(0, 2, size=bch_15_7.k)
        combined = bch_15_7.encode((first + second) % 2)
        np.testing.assert_array_equal(
            combined, (bch_15_7.encode(first) + bch_15_7.encode(second)) % 2)

    def test_wrong_message_length_rejected(self, bch_15_7):
        with pytest.raises(ValueError):
            bch_15_7.encode(np.zeros(bch_15_7.k + 1, dtype=int))

    def test_wrong_codeword_length_rejected(self, bch_15_7):
        with pytest.raises(ValueError):
            bch_15_7.message_from_codeword(np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            bch_15_7.decode(np.zeros(3, dtype=int))


class TestDecoding:
    def test_error_free_word_decodes_immediately(self, bch_15_7):
        message = np.array([1, 0, 1, 1, 0, 0, 1])
        codeword = bch_15_7.encode(message)
        result = bch_15_7.decode(codeword)
        assert result.success
        assert result.corrected_errors == 0
        np.testing.assert_array_equal(result.message, message)

    @pytest.mark.parametrize("num_errors", [1, 2])
    def test_corrects_up_to_t_errors(self, bch_15_7, num_errors):
        rng = np.random.default_rng(10 + num_errors)
        for _ in range(20):
            message = rng.integers(0, 2, size=bch_15_7.k)
            codeword = bch_15_7.encode(message)
            corrupted = codeword.copy()
            positions = rng.choice(bch_15_7.n, size=num_errors, replace=False)
            corrupted[positions] ^= 1
            result = bch_15_7.decode(corrupted)
            assert result.success
            assert result.corrected_errors == num_errors
            np.testing.assert_array_equal(result.codeword, codeword)
            np.testing.assert_array_equal(result.message, message)

    def test_corrects_three_errors_on_longer_code(self, bch_63):
        rng = np.random.default_rng(77)
        message = rng.integers(0, 2, size=bch_63.k)
        codeword = bch_63.encode(message)
        corrupted = codeword.copy()
        corrupted[[0, 31, 62]] ^= 1
        result = bch_63.decode(corrupted)
        assert result.success
        np.testing.assert_array_equal(result.codeword, codeword)

    def test_beyond_capability_is_flagged_or_miscorrected(self, bch_15_7):
        """t+1 errors either fail or land on a different valid codeword."""
        rng = np.random.default_rng(3)
        detected_failures = 0
        for _ in range(30):
            message = rng.integers(0, 2, size=bch_15_7.k)
            codeword = bch_15_7.encode(message)
            corrupted = codeword.copy()
            positions = rng.choice(bch_15_7.n, size=bch_15_7.t + 1,
                                   replace=False)
            corrupted[positions] ^= 1
            result = bch_15_7.decode(corrupted)
            if not result.success:
                detected_failures += 1
            else:
                # Any successful decode must at least return a codeword.
                assert bch_15_7.is_codeword(result.codeword)
        assert detected_failures > 0

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_correctable_patterns(self, bch_63, data):
        message = np.array(data.draw(st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=bch_63.k, max_size=bch_63.k)))
        num_errors = data.draw(st.integers(min_value=0, max_value=bch_63.t))
        positions = data.draw(st.lists(
            st.integers(min_value=0, max_value=bch_63.n - 1),
            min_size=num_errors, max_size=num_errors, unique=True))
        codeword = bch_63.encode(message)
        corrupted = codeword.copy()
        corrupted[positions] ^= 1
        result = bch_63.decode(corrupted)
        assert result.success
        np.testing.assert_array_equal(result.codeword, codeword)

    def test_minimum_distance_at_least_design_distance(self, bch_15_7):
        """Every non-zero codeword has weight >= 2t + 1 (exhaustive check)."""
        minimum_weight = bch_15_7.n
        for value in range(1, 2 ** bch_15_7.k):
            message = np.array([(value >> bit) & 1
                                for bit in range(bch_15_7.k)])
            weight = int(bch_15_7.encode(message).sum())
            minimum_weight = min(minimum_weight, weight)
        assert minimum_weight >= 2 * bch_15_7.t + 1
