"""Tests for GF(2^m) arithmetic and GF(2) polynomials."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import GaloisField, Gf2Polynomial
from repro.ecc.galois import DEFAULT_PRIMITIVE_POLYNOMIALS


@pytest.fixture(scope="module")
def gf16() -> GaloisField:
    return GaloisField(4)


@pytest.fixture(scope="module")
def gf64() -> GaloisField:
    return GaloisField(6)


elements16 = st.integers(min_value=0, max_value=15)
nonzero16 = st.integers(min_value=1, max_value=15)


class TestGaloisFieldConstruction:
    @pytest.mark.parametrize("m", sorted(DEFAULT_PRIMITIVE_POLYNOMIALS))
    def test_default_polynomials_are_primitive(self, m):
        field = GaloisField(m)
        assert field.size == 2 ** m
        # The exponent table enumerates every non-zero element exactly once.
        assert sorted(field.exp_table[:field.order]) == list(range(1, field.size))

    def test_unknown_m_without_polynomial_rejected(self):
        with pytest.raises(ValueError):
            GaloisField(12)

    def test_m_below_two_rejected(self):
        with pytest.raises(ValueError):
            GaloisField(1, primitive_polynomial=0b11)

    def test_wrong_degree_polynomial_rejected(self):
        with pytest.raises(ValueError):
            GaloisField(4, primitive_polynomial=0b1011)

    def test_non_primitive_polynomial_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 divides x^5 - 1, so it is not primitive.
        with pytest.raises(ValueError):
            GaloisField(4, primitive_polynomial=0b11111)


class TestGaloisFieldArithmetic:
    def test_addition_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100

    def test_addition_self_inverse(self, gf16):
        for element in range(16):
            assert gf16.add(element, element) == 0

    def test_multiplication_by_zero_and_one(self, gf16):
        for element in range(16):
            assert gf16.multiply(element, 0) == 0
            assert gf16.multiply(element, 1) == element

    def test_out_of_range_rejected(self, gf16):
        with pytest.raises(ValueError):
            gf16.multiply(16, 1)
        with pytest.raises(ValueError):
            gf16.add(-1, 0)

    def test_inverse_of_zero_rejected(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inverse(0)
        with pytest.raises(ZeroDivisionError):
            gf16.divide(3, 0)

    def test_zero_to_non_positive_power_rejected(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.power(0, 0)

    def test_alpha_powers_cycle(self, gf16):
        assert gf16.alpha_power(0) == 1
        assert gf16.alpha_power(15) == 1
        assert gf16.alpha_power(-1) == gf16.alpha_power(14)

    @settings(max_examples=100, deadline=None)
    @given(a=elements16, b=elements16, c=elements16)
    def test_multiplication_associative_and_commutative(self, gf16, a, b, c):
        assert gf16.multiply(a, b) == gf16.multiply(b, a)
        assert gf16.multiply(gf16.multiply(a, b), c) == \
            gf16.multiply(a, gf16.multiply(b, c))

    @settings(max_examples=100, deadline=None)
    @given(a=elements16, b=elements16, c=elements16)
    def test_distributivity(self, gf16, a, b, c):
        left = gf16.multiply(a, gf16.add(b, c))
        right = gf16.add(gf16.multiply(a, b), gf16.multiply(a, c))
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(a=nonzero16)
    def test_inverse_is_two_sided(self, gf16, a):
        assert gf16.multiply(a, gf16.inverse(a)) == 1

    @settings(max_examples=50, deadline=None)
    @given(a=elements16, b=nonzero16)
    def test_division_inverts_multiplication(self, gf16, a, b):
        assert gf16.divide(gf16.multiply(a, b), b) == a

    @settings(max_examples=50, deadline=None)
    @given(a=nonzero16, exponent=st.integers(min_value=-10, max_value=10))
    def test_power_matches_repeated_multiplication(self, gf16, a, exponent):
        expected = 1
        for _ in range(abs(exponent)):
            expected = gf16.multiply(expected, a)
        if exponent < 0:
            expected = gf16.inverse(expected)
        assert gf16.power(a, exponent) == expected

    def test_poly_eval_horner(self, gf16):
        # p(x) = 1 + x + x^3 evaluated at alpha.
        alpha = gf16.alpha_power(1)
        expected = gf16.add(gf16.add(1, alpha), gf16.power(alpha, 3))
        assert gf16.poly_eval([1, 1, 0, 1], alpha) == expected


class TestMinimalPolynomials:
    def test_minimal_polynomial_of_zero_is_x(self, gf16):
        assert gf16.minimal_polynomial(0) == Gf2Polynomial([0, 1])

    def test_minimal_polynomial_of_one_is_x_plus_one(self, gf16):
        assert gf16.minimal_polynomial(1) == Gf2Polynomial([1, 1])

    def test_minimal_polynomial_of_alpha_is_the_primitive_polynomial(self, gf16):
        minimal = gf16.minimal_polynomial(gf16.alpha_power(1))
        # x^4 + x + 1 -> coefficients lowest degree first.
        assert minimal == Gf2Polynomial([1, 1, 0, 0, 1])

    def test_minimal_polynomial_annihilates_the_element(self, gf64):
        for exponent in (1, 3, 5, 9):
            element = gf64.alpha_power(exponent)
            minimal = gf64.minimal_polynomial(element)
            assert gf64.poly_eval(minimal.coefficients, element) == 0

    def test_conjugates_share_the_minimal_polynomial(self, gf16):
        alpha3 = gf16.alpha_power(3)
        conjugate = gf16.multiply(alpha3, alpha3)  # alpha^6
        assert gf16.minimal_polynomial(alpha3) == \
            gf16.minimal_polynomial(conjugate)

    def test_degree_divides_m(self, gf64):
        for exponent in range(1, 20):
            minimal = gf64.minimal_polynomial(gf64.alpha_power(exponent))
            assert 6 % minimal.degree == 0


class TestGf2Polynomial:
    def test_trailing_zero_coefficients_trimmed(self):
        assert Gf2Polynomial([1, 1, 0, 0]).coefficients == [1, 1]

    def test_degree_of_zero_polynomial(self):
        assert Gf2Polynomial([0]).degree == -1

    def test_multiplication(self):
        # (1 + x)(1 + x) = 1 + x^2 over GF(2).
        square = Gf2Polynomial([1, 1]) * Gf2Polynomial([1, 1])
        assert square == Gf2Polynomial([1, 0, 1])

    def test_multiplication_by_zero(self):
        assert (Gf2Polynomial([0]) * Gf2Polynomial([1, 1])).degree == -1

    def test_mod_by_larger_degree_is_identity(self):
        small = Gf2Polynomial([1, 1])
        big = Gf2Polynomial([1, 0, 1, 1])
        assert small % big == small

    def test_mod_by_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Gf2Polynomial([1, 1]) % Gf2Polynomial([0])
        with pytest.raises(ZeroDivisionError):
            Gf2Polynomial([1, 1]).divmod(Gf2Polynomial([0]))

    def test_divmod_reconstructs_the_dividend(self):
        dividend = Gf2Polynomial([1, 0, 1, 1, 0, 1])
        divisor = Gf2Polynomial([1, 1, 1])
        quotient, remainder = dividend.divmod(divisor)
        reconstructed_coefficients = (quotient * divisor).coefficients
        total = [0] * max(len(reconstructed_coefficients),
                          len(remainder.coefficients))
        for index, coefficient in enumerate(reconstructed_coefficients):
            total[index] ^= coefficient
        for index, coefficient in enumerate(remainder.coefficients):
            total[index] ^= coefficient
        assert Gf2Polynomial(total) == dividend

    def test_gcd_of_multiples(self):
        base = Gf2Polynomial([1, 1, 1])
        multiple = base * Gf2Polynomial([1, 1])
        assert multiple.gcd(base) == base

    def test_lcm_is_divisible_by_both(self):
        first = Gf2Polynomial([1, 1])       # x + 1
        second = Gf2Polynomial([1, 1, 1])   # x^2 + x + 1
        lcm = first.lcm(second)
        assert (lcm % first).degree == -1
        assert (lcm % second).degree == -1

    def test_equality_and_hash(self):
        assert Gf2Polynomial([1, 0, 1]) == Gf2Polynomial([1, 0, 1, 0])
        assert hash(Gf2Polynomial([1, 1])) == hash(Gf2Polynomial([1, 1, 0]))
        assert Gf2Polynomial([1]) != "not a polynomial"

    @settings(max_examples=50, deadline=None)
    @given(coefficients=st.lists(st.integers(min_value=0, max_value=1),
                                 min_size=1, max_size=12),
           divisor=st.lists(st.integers(min_value=0, max_value=1),
                            min_size=2, max_size=6))
    def test_mod_degree_below_divisor(self, coefficients, divisor):
        divisor_poly = Gf2Polynomial(divisor)
        if divisor_poly.degree < 0:
            return
        remainder = Gf2Polynomial(coefficients) % divisor_poly
        assert remainder.degree < max(divisor_poly.degree, 1) or \
            remainder.degree < divisor_poly.degree
