"""Tests for the LDPC code, its decoders and the Gallager construction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import LDPCCode, gallager_parity_check_matrix


@pytest.fixture(scope="module")
def code() -> LDPCCode:
    return LDPCCode.regular(n=96, column_weight=3, row_weight=6,
                            rng=np.random.default_rng(0))


def _bpsk_llrs(codeword: np.ndarray, noise_sigma: float,
               rng: np.random.Generator) -> np.ndarray:
    """Channel LLRs of a codeword sent over a BPSK/AWGN channel."""
    symbols = 1.0 - 2.0 * codeword
    received = symbols + rng.normal(0.0, noise_sigma, size=codeword.shape)
    return 2.0 * received / noise_sigma ** 2


class TestGallagerConstruction:
    def test_column_and_row_weights(self):
        matrix = gallager_parity_check_matrix(24, 3, 6,
                                              rng=np.random.default_rng(1))
        assert matrix.shape == (12, 24)
        np.testing.assert_array_equal(matrix.sum(axis=0), 3)
        np.testing.assert_array_equal(matrix.sum(axis=1), 6)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gallager_parity_check_matrix(1, 3, 6, rng=rng)
        with pytest.raises(ValueError):
            gallager_parity_check_matrix(24, 1, 6, rng=rng)
        with pytest.raises(ValueError):
            gallager_parity_check_matrix(24, 3, 1, rng=rng)
        with pytest.raises(ValueError):
            gallager_parity_check_matrix(25, 3, 6, rng=rng)


class TestLDPCCodeStructure:
    def test_rate_roughly_half(self, code):
        assert 0.45 <= code.rate <= 0.60

    def test_parity_check_must_be_2d(self):
        with pytest.raises(ValueError):
            LDPCCode(np.zeros(10))

    def test_all_encoded_words_satisfy_parity(self, code):
        rng = np.random.default_rng(2)
        for _ in range(10):
            message = rng.integers(0, 2, size=code.k)
            assert code.is_codeword(code.encode(message))

    def test_encoding_is_systematic(self, code):
        rng = np.random.default_rng(3)
        message = rng.integers(0, 2, size=code.k)
        np.testing.assert_array_equal(
            code.message_from_codeword(code.encode(message)), message)

    def test_encoding_is_linear(self, code):
        rng = np.random.default_rng(4)
        first = rng.integers(0, 2, size=code.k)
        second = rng.integers(0, 2, size=code.k)
        np.testing.assert_array_equal(
            code.encode((first + second) % 2),
            (code.encode(first) + code.encode(second)) % 2)

    def test_zero_message_gives_zero_codeword(self, code):
        assert not code.encode(np.zeros(code.k, dtype=int)).any()

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=int))
        with pytest.raises(ValueError):
            code.syndrome(np.zeros(code.n - 1, dtype=int))
        with pytest.raises(ValueError):
            code.message_from_codeword(np.zeros(5, dtype=int))

    def test_syndrome_of_corrupted_word_nonzero(self, code):
        codeword = code.encode(np.ones(code.k, dtype=int))
        corrupted = codeword.copy()
        corrupted[0] ^= 1
        assert code.syndrome(corrupted).any()


class TestMinSumDecoder:
    def test_noiseless_llrs_decode_in_zero_iterations(self, code):
        rng = np.random.default_rng(5)
        message = rng.integers(0, 2, size=code.k)
        codeword = code.encode(message)
        llrs = 10.0 * (1.0 - 2.0 * codeword)
        result = code.decode_min_sum(llrs)
        assert result.success
        assert result.iterations == 0
        np.testing.assert_array_equal(result.codeword, codeword)

    def test_corrects_moderate_awgn_noise(self, code):
        rng = np.random.default_rng(6)
        successes = 0
        for _ in range(10):
            message = rng.integers(0, 2, size=code.k)
            codeword = code.encode(message)
            llrs = _bpsk_llrs(codeword, noise_sigma=0.6, rng=rng)
            result = code.decode_min_sum(llrs, max_iterations=50)
            if result.success and np.array_equal(result.codeword, codeword):
                successes += 1
        assert successes >= 8

    def test_soft_beats_hard_decisions(self, code):
        """Min-sum on LLRs corrects frames the raw hard decision gets wrong."""
        rng = np.random.default_rng(7)
        improved = 0
        for _ in range(10):
            message = rng.integers(0, 2, size=code.k)
            codeword = code.encode(message)
            llrs = _bpsk_llrs(codeword, noise_sigma=0.7, rng=rng)
            hard = (llrs < 0).astype(int)
            hard_errors = int(np.count_nonzero(hard != codeword))
            result = code.decode_min_sum(llrs, max_iterations=50)
            decoded_errors = int(np.count_nonzero(result.codeword != codeword))
            if hard_errors > 0 and decoded_errors < hard_errors:
                improved += 1
        assert improved >= 5

    def test_hopeless_llrs_reported_as_failure(self, code):
        rng = np.random.default_rng(8)
        message = rng.integers(0, 2, size=code.k)
        codeword = code.encode(message)
        # Flip the sign of half the LLRs: far beyond any code's capability.
        llrs = 5.0 * (1.0 - 2.0 * codeword)
        flip = rng.choice(code.n, size=code.n // 2, replace=False)
        llrs[flip] *= -1.0
        result = code.decode_min_sum(llrs, max_iterations=5)
        assert not result.success or \
            not np.array_equal(result.codeword, codeword)

    def test_validation(self, code):
        with pytest.raises(ValueError):
            code.decode_min_sum(np.zeros(code.n - 1))
        with pytest.raises(ValueError):
            code.decode_min_sum(np.zeros(code.n), scale=0.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_decoded_word_is_always_valid_or_flagged(self, code, seed):
        rng = np.random.default_rng(seed)
        message = rng.integers(0, 2, size=code.k)
        codeword = code.encode(message)
        llrs = _bpsk_llrs(codeword, noise_sigma=0.9, rng=rng)
        result = code.decode_min_sum(llrs, max_iterations=20)
        if result.success:
            assert code.is_codeword(result.codeword)


def _reference_min_sum(code: LDPCCode, llrs: np.ndarray,
                       max_iterations: int = 30, scale: float = 0.8
                       ) -> tuple[np.ndarray, int, bool]:
    """The pre-vectorization per-check Python loop, kept as the oracle."""
    llrs = np.asarray(llrs, dtype=float)
    num_checks = code.parity_check.shape[0]
    check_to_variable = np.zeros((num_checks, code.n))
    hard = (llrs < 0).astype(np.int64)
    if code.is_codeword(hard):
        return hard, 0, True
    for iteration in range(1, max_iterations + 1):
        totals = llrs + check_to_variable.sum(axis=0)
        for check, neighbours in enumerate(code._check_neighbours):
            incoming = totals[neighbours] - check_to_variable[check,
                                                              neighbours]
            signs = np.sign(incoming)
            signs[signs == 0] = 1.0
            magnitudes = np.abs(incoming)
            order = np.argsort(magnitudes)
            smallest = magnitudes[order[0]]
            second = magnitudes[order[1]] if neighbours.size > 1 else smallest
            product_sign = np.prod(signs)
            outgoing = np.where(np.arange(neighbours.size) == order[0],
                                second, smallest)
            check_to_variable[check, neighbours] = \
                scale * product_sign * signs * outgoing
        totals = llrs + check_to_variable.sum(axis=0)
        hard = (totals < 0).astype(np.int64)
        if code.is_codeword(hard):
            return hard, iteration, True
    return hard, max_iterations, False


class TestVectorizedMinSumRegression:
    """The vectorized check-node update must match the scalar loop exactly."""

    @pytest.mark.parametrize("noise_sigma", [0.5, 0.7, 0.9])
    def test_identical_decode_results(self, code, noise_sigma):
        rng = np.random.default_rng(int(noise_sigma * 100))
        for _ in range(8):
            message = rng.integers(0, 2, size=code.k)
            codeword = code.encode(message)
            llrs = _bpsk_llrs(codeword, noise_sigma=noise_sigma, rng=rng)
            expected_codeword, expected_iterations, expected_success = \
                _reference_min_sum(code, llrs, max_iterations=30)
            result = code.decode_min_sum(llrs, max_iterations=30)
            np.testing.assert_array_equal(result.codeword, expected_codeword)
            assert result.iterations == expected_iterations
            assert result.success == expected_success

    def test_identical_on_irregular_parity_check(self):
        """Padded adjacency handles rows of different degree."""
        rng = np.random.default_rng(0)
        parity = gallager_parity_check_matrix(24, 3, 6, rng=rng)
        parity[0, :3] = 0  # degree-3 row among degree-6 rows
        irregular = LDPCCode(parity)
        for seed in range(6):
            noise = np.random.default_rng(seed)
            codeword = irregular.encode(
                noise.integers(0, 2, size=irregular.k))
            llrs = _bpsk_llrs(codeword, noise_sigma=0.8, rng=noise)
            expected_codeword, expected_iterations, expected_success = \
                _reference_min_sum(irregular, llrs, max_iterations=20)
            result = irregular.decode_min_sum(llrs, max_iterations=20)
            np.testing.assert_array_equal(result.codeword, expected_codeword)
            assert result.iterations == expected_iterations
            assert result.success == expected_success


class TestBitFlippingDecoder:
    def test_clean_word_passes_through(self, code):
        codeword = code.encode(np.ones(code.k, dtype=int))
        result = code.decode_bit_flipping(codeword)
        assert result.success
        np.testing.assert_array_equal(result.codeword, codeword)

    def test_corrects_a_few_flips(self, code):
        rng = np.random.default_rng(9)
        corrected = 0
        for _ in range(10):
            message = rng.integers(0, 2, size=code.k)
            codeword = code.encode(message)
            corrupted = codeword.copy()
            corrupted[rng.choice(code.n, size=2, replace=False)] ^= 1
            result = code.decode_bit_flipping(corrupted)
            if result.success and np.array_equal(result.codeword, codeword):
                corrected += 1
        assert corrected >= 6

    def test_weaker_than_min_sum(self, code):
        """At the same noise level the soft decoder corrects more frames."""
        rng = np.random.default_rng(10)
        soft_wins, hard_wins = 0, 0
        for _ in range(10):
            message = rng.integers(0, 2, size=code.k)
            codeword = code.encode(message)
            llrs = _bpsk_llrs(codeword, noise_sigma=0.75, rng=rng)
            hard = (llrs < 0).astype(int)
            soft_result = code.decode_min_sum(llrs, max_iterations=50)
            hard_result = code.decode_bit_flipping(hard)
            if soft_result.success and np.array_equal(soft_result.codeword,
                                                      codeword):
                soft_wins += 1
            if hard_result.success and np.array_equal(hard_result.codeword,
                                                      codeword):
                hard_wins += 1
        assert soft_wins >= hard_wins

    def test_shape_validation(self, code):
        with pytest.raises(ValueError):
            code.decode_bit_flipping(np.zeros(3, dtype=int))


class TestBatchOperations:
    """The batch encode/syndrome/decode paths must match the scalar ones."""

    def test_encode_batch_matches_scalar(self, code):
        rng = np.random.default_rng(20)
        messages = rng.integers(0, 2, size=(9, code.k))
        batch = code.encode_batch(messages)
        reference = np.stack([code.encode(message) for message in messages])
        np.testing.assert_array_equal(batch, reference)

    def test_encode_batch_validation(self, code):
        with pytest.raises(ValueError):
            code.encode_batch(np.zeros((2, code.k + 1), dtype=int))
        with pytest.raises(ValueError):
            code.encode_batch(np.zeros(code.k, dtype=int))

    def test_syndrome_batch_matches_scalar(self, code):
        rng = np.random.default_rng(21)
        words = rng.integers(0, 2, size=(5, code.n))
        batch = code.syndrome_batch(words)
        reference = np.stack([code.syndrome(word) for word in words])
        np.testing.assert_array_equal(batch, reference)
        with pytest.raises(ValueError):
            code.syndrome_batch(np.zeros(code.n, dtype=int))

    def test_decode_batch_bit_identical_to_scalar(self, code):
        """Across noise levels spanning clean to failing decodes."""
        rng = np.random.default_rng(22)
        for noise_sigma in (0.3, 0.7, 1.1):
            messages = rng.integers(0, 2, size=(6, code.k))
            codewords = code.encode_batch(messages)
            llrs = np.stack([_bpsk_llrs(codeword, noise_sigma, rng)
                             for codeword in codewords])
            batch = code.decode_min_sum_batch(llrs, max_iterations=15)
            for index in range(len(codewords)):
                scalar = code.decode_min_sum(llrs[index], max_iterations=15)
                assert batch[index].success == scalar.success
                assert batch[index].iterations == scalar.iterations
                np.testing.assert_array_equal(batch[index].codeword,
                                              scalar.codeword)
                np.testing.assert_array_equal(batch[index].message,
                                              scalar.message)

    def test_decode_batch_validation(self, code):
        with pytest.raises(ValueError):
            code.decode_min_sum_batch(np.zeros(code.n))
        with pytest.raises(ValueError):
            code.decode_min_sum_batch(np.zeros((2, code.n)), scale=0.0)
