"""Tests for LLR computation and end-to-end ECC evaluation over the channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc import (
    BCHCode,
    LDPCCode,
    LevelDensityTable,
    densities_from_channel,
    densities_from_samples,
    evaluate_bch_over_channel,
    evaluate_ldpc_over_channel,
    llr_quality_summary,
    page_llrs,
    required_bch_capability,
)
from repro.flash import BlockGeometry, FlashChannel, FlashParameters
from repro.flash.cell import GRAY_MAP, LOWER_PAGE, NUM_LEVELS, levels_to_pages


@pytest.fixture
def params() -> FlashParameters:
    return FlashParameters()


@pytest.fixture
def channel(params) -> FlashChannel:
    return FlashChannel(params, geometry=BlockGeometry(32, 32),
                        rng=np.random.default_rng(0))


@pytest.fixture
def density_table(channel, params) -> LevelDensityTable:
    return densities_from_channel(channel, 7000, num_bins=96, num_blocks=3,
                                  params=params)


class TestLevelDensityTable:
    def test_from_samples_shapes(self, channel, params):
        program, voltages = channel.paired_blocks(2, 4000)
        table = densities_from_samples(program, voltages, num_bins=64,
                                       params=params)
        assert table.grid.shape == (64,)
        assert table.densities.shape == (NUM_LEVELS, 64)

    def test_density_peaks_near_level_means(self, channel, params):
        program, voltages = channel.paired_blocks(4, 4000)
        table = densities_from_samples(program, voltages, num_bins=128,
                                       params=params)
        # Erased cells receive the full ICI shift, so their peak sits well
        # above the nominal erased mean; check the programmed levels only.
        for level in range(1, NUM_LEVELS):
            peak = table.grid[np.argmax(table.densities[level])]
            assert abs(peak - params.level_means[level]) < 25.0

    def test_lookup_is_floored(self, density_table):
        # A voltage far outside any level's support still returns a positive
        # density so the LLRs stay finite.
        values = density_table.lookup(np.array([0.0]), 7)
        assert values[0] > 0.0

    def test_lookup_rejects_bad_level(self, density_table):
        with pytest.raises(ValueError):
            density_table.lookup(np.array([100.0]), 9)

    def test_validation(self):
        grid = np.linspace(0, 1, 16)
        with pytest.raises(ValueError):
            LevelDensityTable(grid=grid[::-1], densities=np.zeros((8, 16)))
        with pytest.raises(ValueError):
            LevelDensityTable(grid=grid, densities=np.zeros((7, 16)))
        with pytest.raises(ValueError):
            LevelDensityTable(grid=grid, densities=-np.ones((8, 16)))

    def test_from_samples_validation(self, channel):
        program, voltages = channel.paired_blocks(1, 4000)
        with pytest.raises(ValueError):
            densities_from_samples(program[:, :8], voltages)
        with pytest.raises(ValueError):
            densities_from_samples(program, voltages, num_bins=4)
        with pytest.raises(ValueError):
            densities_from_samples(program, voltages,
                                   voltage_range=(100.0, 50.0))


class TestPageLLRs:
    def test_sign_matches_written_bit_for_clean_voltages(self, params,
                                                         density_table):
        """A cell read exactly at its level mean gets an LLR of the right sign."""
        levels = np.arange(NUM_LEVELS)
        voltages = params.means_array[levels]
        for page in (0, 1, 2):
            llrs = page_llrs(voltages, page, density_table)
            bits = levels_to_pages(levels)[..., page]
            correct = np.sign(llrs) == np.where(bits == 0, 1.0, -1.0)
            # The density table is a histogram estimate: allow one outlier.
            assert correct.sum() >= NUM_LEVELS - 1

    def test_llr_magnitude_clipped(self, density_table):
        voltages = np.linspace(0, 650, 100)
        llrs = page_llrs(voltages, LOWER_PAGE, density_table, clip=12.0)
        assert np.all(np.abs(llrs) <= 12.0)

    def test_priors_shift_the_llrs(self, density_table):
        voltages = np.array([300.0])
        balanced = page_llrs(voltages, LOWER_PAGE, density_table)
        zero_levels = [level for level in range(NUM_LEVELS)
                       if GRAY_MAP[level][LOWER_PAGE] == 0]
        priors = np.full(NUM_LEVELS, 0.01)
        priors[zero_levels] = 1.0
        priors /= priors.sum()
        skewed = page_llrs(voltages, LOWER_PAGE, density_table, priors=priors)
        assert skewed[0] > balanced[0]

    def test_validation(self, density_table):
        voltages = np.array([100.0])
        with pytest.raises(ValueError):
            page_llrs(voltages, 3, density_table)
        with pytest.raises(ValueError):
            page_llrs(voltages, 0, density_table, clip=0.0)
        with pytest.raises(ValueError):
            page_llrs(voltages, 0, density_table,
                      priors=np.array([0.5, 0.5]))

    def test_hard_decisions_from_llrs_track_wear(self, channel, params,
                                                 density_table):
        """LLR hard decisions show more lower-page errors at higher wear."""
        rates = {}
        for pe_cycles in (4000, 10000):
            program, voltages = channel.paired_blocks(3, pe_cycles)
            llrs = page_llrs(voltages, LOWER_PAGE, density_table)
            bits = levels_to_pages(program)[..., LOWER_PAGE]
            summary = llr_quality_summary(llrs, bits)
            rates[pe_cycles] = summary["hard_bit_error_rate"]
        assert rates[10000] > rates[4000]


class TestLLRQualitySummary:
    def test_perfect_llrs(self):
        bits = np.array([0, 1, 0, 1])
        llrs = np.array([5.0, -5.0, 3.0, -2.0])
        summary = llr_quality_summary(llrs, bits)
        assert summary["hard_bit_error_rate"] == 0.0
        assert summary["overconfident_error_fraction"] == 0.0
        assert summary["mean_llr_magnitude"] == pytest.approx(3.75)

    def test_all_wrong_llrs(self):
        bits = np.array([0, 1])
        llrs = np.array([-4.0, 4.0])
        summary = llr_quality_summary(llrs, bits)
        assert summary["hard_bit_error_rate"] == 1.0
        assert summary["overconfident_error_fraction"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            llr_quality_summary(np.array([1.0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            llr_quality_summary(np.array([]), np.array([]))

    def test_zero_llrs_not_overconfident(self):
        summary = llr_quality_summary(np.zeros(4), np.array([0, 1, 0, 1]))
        assert summary["overconfident_error_fraction"] == 0.0


class TestEndToEndEvaluation:
    def test_bch_corrects_the_simulated_channel(self, channel, params):
        code = BCHCode(m=6, t=4)
        result = evaluate_bch_over_channel(code, channel, 7000,
                                           num_codewords=8,
                                           rng=np.random.default_rng(1),
                                           params=params)
        assert result.codewords == 8
        assert 0.0 <= result.raw_bit_error_rate <= 1.0
        assert result.post_correction_bit_error_rate <= result.raw_bit_error_rate
        assert result.frame_error_rate <= 0.5

    def test_bch_frame_errors_grow_with_wear(self, channel, params):
        code = BCHCode(m=6, t=1)
        young = evaluate_bch_over_channel(code, channel, 1000,
                                          num_codewords=12,
                                          rng=np.random.default_rng(2),
                                          params=params)
        old = evaluate_bch_over_channel(code, channel, 10000,
                                        num_codewords=12,
                                        rng=np.random.default_rng(2),
                                        params=params)
        assert old.raw_bit_error_rate >= young.raw_bit_error_rate

    def test_ldpc_soft_decoding_over_the_channel(self, channel, params,
                                                 density_table):
        code = LDPCCode.regular(n=96, column_weight=3, row_weight=6,
                                rng=np.random.default_rng(3))
        result = evaluate_ldpc_over_channel(code, channel, 7000,
                                            density_table, num_codewords=6,
                                            rng=np.random.default_rng(4),
                                            params=params)
        assert result.codewords == 6
        assert result.post_correction_bit_error_rate <= result.raw_bit_error_rate

    def test_num_codewords_validation(self, channel, params, density_table):
        code = BCHCode(m=4, t=1)
        with pytest.raises(ValueError):
            evaluate_bch_over_channel(code, channel, 4000, num_codewords=0)
        ldpc = LDPCCode.regular(n=24, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluate_ldpc_over_channel(ldpc, channel, 4000, density_table,
                                       num_codewords=0)

    def test_frames_failed_property(self):
        from repro.ecc.evaluate import CodewordChannelResult
        result = CodewordChannelResult(pe_cycles=4000, codewords=10,
                                       raw_bit_error_rate=0.01,
                                       frame_error_rate=0.2,
                                       post_correction_bit_error_rate=0.0)
        assert result.frames_failed == 2


class TestRequiredBCHCapability:
    def test_zero_error_rate_needs_no_correction(self):
        assert required_bch_capability(0.0, 1024) == 0

    def test_capability_grows_with_error_rate(self):
        low = required_bch_capability(1e-4, 1024)
        high = required_bch_capability(1e-2, 1024)
        assert high > low

    def test_capability_grows_with_codeword_length(self):
        short = required_bch_capability(1e-3, 512)
        long = required_bch_capability(1e-3, 4096)
        assert long > short

    def test_stricter_target_needs_more_correction(self):
        loose = required_bch_capability(1e-3, 1024, target_frame_error_rate=1e-2)
        strict = required_bch_capability(1e-3, 1024, target_frame_error_rate=1e-6)
        assert strict > loose

    def test_validation(self):
        with pytest.raises(ValueError):
            required_bch_capability(-0.1, 100)
        with pytest.raises(ValueError):
            required_bch_capability(0.01, 0)
        with pytest.raises(ValueError):
            required_bch_capability(0.01, 100, target_frame_error_rate=1.5)
        with pytest.raises(ValueError):
            required_bch_capability(0.4, 100, max_t=2)
