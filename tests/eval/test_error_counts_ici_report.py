"""Tests for error counting, ICI profiling and text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import gaussian_pdf
from repro.eval import (
    error_counts_from_samples,
    error_probability_from_pdf,
    format_bar_chart,
    format_pie_summary,
    format_table,
    ici_error_profile,
    normalized_error_counts,
    pattern_rank_order,
    rank_agreement,
    stacked_error_table,
    top_pattern_frequencies,
)
from repro.flash import (
    BlockGeometry,
    FlashChannel,
    FlashParameters,
    default_read_thresholds,
)


@pytest.fixture
def paired_data():
    channel = FlashChannel(geometry=BlockGeometry(32, 32),
                           rng=np.random.default_rng(23))
    return channel.paired_blocks(40, 7000)


class TestErrorCounts:
    def test_counts_exclude_level_zero(self, paired_data):
        program, voltages = paired_data
        counts = error_counts_from_samples(program, voltages)
        assert counts.shape == (7,)

    def test_counts_grow_with_wear(self):
        channel = FlashChannel(geometry=BlockGeometry(32, 32),
                               rng=np.random.default_rng(5))
        totals = {}
        for pe in (4000, 10000):
            program, voltages = channel.paired_blocks(40, pe)
            totals[pe] = error_counts_from_samples(program, voltages).sum()
        assert totals[10000] > totals[4000]

    def test_error_probability_from_gaussian_pdf(self):
        """Closed-form check: mass outside +-1 threshold window."""
        params = FlashParameters()
        thresholds = default_read_thresholds(params)
        level = 4
        mu = params.means_array[level]
        sigma = 10.0
        grid = np.linspace(0, 650, 6501)
        pdf = gaussian_pdf(grid, mu, sigma)
        probability = error_probability_from_pdf(grid, pdf, level,
                                                 thresholds, params)
        from scipy import stats
        expected = (stats.norm.cdf(thresholds[level - 1], mu, sigma)
                    + stats.norm.sf(thresholds[level], mu, sigma))
        assert probability == pytest.approx(expected, abs=1e-3)

    def test_error_probability_level7_one_sided(self):
        params = FlashParameters()
        grid = np.linspace(0, 650, 6501)
        pdf = gaussian_pdf(grid, params.means_array[7], 9.0)
        probability = error_probability_from_pdf(grid, pdf, 7, params=params)
        from scipy import stats
        expected = stats.norm.cdf(default_read_thresholds(params)[6],
                                  params.means_array[7], 9.0)
        assert probability == pytest.approx(expected, abs=1e-3)

    def test_error_probability_rejects_bad_level(self):
        grid = np.linspace(0, 650, 100)
        with pytest.raises(ValueError):
            error_probability_from_pdf(grid, np.ones_like(grid), 9)

    def test_error_probability_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_probability_from_pdf(np.zeros(5), np.zeros(4), 1)

    def test_error_probability_rejects_zero_mass(self):
        grid = np.linspace(0, 650, 100)
        with pytest.raises(ValueError):
            error_probability_from_pdf(grid, np.zeros_like(grid), 1)

    def test_normalized_error_counts_reference_is_one(self):
        counts = {"measured_4000": np.array([1.0, 2.0, 3.0]),
                  "model_4000": np.array([2.0, 2.0, 4.0])}
        normalized = normalized_error_counts(counts, "measured_4000")
        assert normalized["measured_4000"].sum() == pytest.approx(1.0)
        assert normalized["model_4000"].sum() == pytest.approx(8.0 / 6.0)

    def test_normalized_error_counts_explicit_reference_total(self):
        counts = {"a": np.array([1.0, 1.0])}
        normalized = normalized_error_counts(counts, "a", reference_total=4.0)
        assert normalized["a"].sum() == pytest.approx(0.5)

    def test_normalized_error_counts_missing_reference(self):
        with pytest.raises(KeyError):
            normalized_error_counts({"a": np.array([1.0])}, "b")

    def test_normalized_error_counts_zero_reference(self):
        with pytest.raises(ValueError):
            normalized_error_counts({"a": np.array([0.0])}, "a")

    def test_stacked_error_table_rows(self):
        normalized = {"M": np.array([0.1] * 7), "G": np.array([0.2] * 7)}
        rows = stacked_error_table(normalized)
        assert len(rows) == 2
        assert rows[0]["model"] == "M"
        assert rows[0]["total"] == pytest.approx(0.7)
        assert set(rows[0]) >= {f"level_{i}" for i in range(1, 8)}


class TestICIAnalysis:
    def test_profile_has_both_directions(self, paired_data):
        program, voltages = paired_data
        profile = ici_error_profile(program, voltages)
        assert set(profile) == {"wl", "bl"}

    def test_profile_frequencies_sum_to_one(self, paired_data):
        program, voltages = paired_data
        profile = ici_error_profile(program, voltages)
        for direction in ("wl", "bl"):
            values = [value for key, value in profile[direction].items()
                      if not key.startswith("__")]
            assert sum(values) == pytest.approx(1.0)

    def test_profile_reports_total_errors(self, paired_data):
        program, voltages = paired_data
        profile = ici_error_profile(program, voltages)
        assert profile["bl"]["__total_errors__"] > 0

    def test_707_dominates_bitline_direction(self, paired_data):
        program, voltages = paired_data
        profile = ici_error_profile(program, voltages)
        assert pattern_rank_order(profile["bl"], top_k=1) == ["707"]

    def test_top_pattern_frequencies_aggregates_others(self):
        frequencies = {f"70{i}": 0.1 for i in range(8)}
        frequencies["606"] = 0.2
        top = top_pattern_frequencies(frequencies, top_k=3)
        assert len(top) == 4  # 3 named + "others"
        assert top["others"] == pytest.approx(sum(frequencies.values())
                                              - sum(sorted(frequencies.values())[-3:]))

    def test_top_pattern_frequencies_ignores_metadata(self):
        frequencies = {"707": 0.6, "606": 0.4, "__total_errors__": 100.0}
        top = top_pattern_frequencies(frequencies, top_k=5)
        assert "__total_errors__" not in top

    def test_pattern_rank_order_sorted(self):
        frequencies = {"707": 0.5, "606": 0.2, "607": 0.3}
        assert pattern_rank_order(frequencies) == ["707", "607", "606"]

    def test_rank_agreement_perfect(self):
        frequencies = {"707": 0.5, "607": 0.3, "606": 0.2}
        assert rank_agreement(frequencies, frequencies, top_k=3) == 1.0

    def test_rank_agreement_partial(self):
        reference = {"707": 0.5, "607": 0.3, "606": 0.2}
        candidate = {"707": 0.5, "505": 0.3, "404": 0.2}
        assert rank_agreement(reference, candidate, top_k=3) == pytest.approx(1 / 3)

    def test_rank_agreement_rejects_bad_k(self):
        with pytest.raises(ValueError):
            rank_agreement({}, {}, top_k=0)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"model": "M", "total": 1.0}, {"model": "cV-G", "total": 1.36}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "model" in lines[0] and "total" in lines[0]
        assert "1.360" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_bar_chart_scales_bars(self):
        chart = format_bar_chart({"x": 1.0, "y": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_format_bar_chart_empty(self):
        assert format_bar_chart({}) == "(no data)"

    def test_format_pie_summary_contains_percentages(self):
        text = format_pie_summary({"707": 0.25, "606": 0.75,
                                   "__total_errors__": 42.0}, title="BL")
        assert "BL" in text
        assert "75.0%" in text
        assert "42" in text

    def test_format_pie_summary_truncates_to_top_k(self):
        frequencies = {f"p{i}": 0.1 for i in range(10)}
        text = format_pie_summary(frequencies, top_k=3)
        assert text.count("%") == 4  # three named + others
