"""Tests for conditional histograms and distribution distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    conditional_histogram,
    conditional_pdfs,
    distribution_distance,
    histogram_bin_centers,
    kl_divergence,
    total_variation_distance,
    voltage_histogram,
)
from repro.flash import BlockGeometry, FlashChannel, FlashParameters


@pytest.fixture
def paired_data():
    channel = FlashChannel(geometry=BlockGeometry(32, 32),
                           rng=np.random.default_rng(17))
    return channel.paired_blocks(30, 7000)


class TestHistograms:
    def test_bin_centers_shape_and_range(self):
        centers = histogram_bin_centers(bins=100)
        params = FlashParameters()
        assert centers.shape == (100,)
        assert centers[0] > params.voltage_min
        assert centers[-1] < params.voltage_max

    def test_voltage_histogram_sums_to_one(self, paired_data):
        _, voltages = paired_data
        _, probabilities = voltage_histogram(voltages)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_voltage_histogram_rejects_empty(self):
        with pytest.raises(ValueError):
            voltage_histogram(np.array([]))

    def test_voltage_histogram_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            voltage_histogram(np.array([-1000.0, 2000.0]))

    def test_conditional_histogram_centred_on_level_mean(self, paired_data):
        program, voltages = paired_data
        params = FlashParameters()
        for level in (1, 4, 7):
            centers, probabilities = conditional_histogram(program, voltages,
                                                           level)
            mode = centers[np.argmax(probabilities)]
            assert abs(mode - params.means_array[level]) < 25

    def test_conditional_histogram_shape_mismatch(self):
        with pytest.raises(ValueError):
            conditional_histogram(np.zeros((2, 2), dtype=int), np.zeros((3, 3)), 1)

    def test_conditional_histogram_invalid_level(self, paired_data):
        program, voltages = paired_data
        with pytest.raises(ValueError):
            conditional_histogram(program, voltages, 8)

    def test_conditional_histogram_missing_level(self):
        program = np.zeros((4, 4), dtype=int)
        voltages = np.full((4, 4), 20.0)
        with pytest.raises(ValueError):
            conditional_histogram(program, voltages, 5)

    def test_conditional_pdfs_default_levels(self, paired_data):
        program, voltages = paired_data
        pdfs = conditional_pdfs(program, voltages)
        assert set(pdfs) == set(range(1, 8))
        for centers, probabilities in pdfs.values():
            assert probabilities.sum() == pytest.approx(1.0)

    def test_peak_drops_with_wear(self):
        """Fig. 4: the peak of each level's PDF drops as P/E grows."""
        channel = FlashChannel(geometry=BlockGeometry(32, 32),
                               rng=np.random.default_rng(3))
        peaks = {}
        for pe in (4000, 10000):
            program, voltages = channel.paired_blocks(40, pe)
            _, probabilities = conditional_histogram(program, voltages, 4,
                                                     bins=200)
            peaks[pe] = probabilities.max()
        assert peaks[10000] < peaks[4000]


class TestDivergences:
    def test_tv_identical_distributions(self):
        p = np.array([0.25, 0.25, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_tv_disjoint_distributions(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_distance(p, q) == pytest.approx(1.0)

    def test_tv_symmetric(self):
        rng = np.random.default_rng(0)
        p = rng.random(10)
        q = rng.random(10)
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p))

    def test_tv_unnormalised_inputs_are_normalised(self):
        p = np.array([2.0, 2.0])
        q = np.array([1.0, 1.0])
        assert total_variation_distance(p, q) == pytest.approx(0.0)

    def test_tv_rejects_negative(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([-0.1, 1.1]), np.array([0.5, 0.5]))

    def test_tv_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([0.5, 0.5]))

    def test_kl_zero_for_identical(self):
        p = np.array([0.3, 0.7])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive_and_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        forward = kl_divergence(p, q)
        backward = kl_divergence(q, p)
        assert forward > 0 and backward > 0
        assert forward != pytest.approx(backward)

    def test_kl_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            kl_divergence(np.zeros(3), np.ones(3))

    @given(st.integers(2, 30), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_tv_bounded_between_zero_and_one(self, size, seed):
        rng = np.random.default_rng(seed)
        p = rng.random(size) + 1e-9
        q = rng.random(size) + 1e-9
        tv = total_variation_distance(p, q)
        assert 0.0 <= tv <= 1.0

    def test_distribution_distance_same_sample_is_zero(self, paired_data):
        _, voltages = paired_data
        assert distribution_distance(voltages, voltages) == pytest.approx(0.0)

    def test_distribution_distance_detects_shift(self, paired_data):
        _, voltages = paired_data
        shifted = np.clip(voltages + 100.0, 0, 650)
        assert distribution_distance(voltages, shifted) > 0.3

    def test_distribution_distance_kl_metric(self, paired_data):
        _, voltages = paired_data
        value = distribution_distance(voltages, voltages + 5.0, metric="kl")
        assert value > 0.0

    def test_distribution_distance_unknown_metric(self, paired_data):
        _, voltages = paired_data
        with pytest.raises(ValueError):
            distribution_distance(voltages, voltages, metric="wasserstein")

    def test_distribution_distance_rejects_empty_overlap(self):
        with pytest.raises(ValueError):
            distribution_distance(np.array([10.0]), np.array([-500.0]),
                                  voltage_range=(0.0, 650.0))
