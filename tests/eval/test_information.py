"""Tests for the information-theoretic channel evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    channel_capacity_estimate,
    hard_decision_mutual_information,
    joint_level_voltage_histogram,
    multi_read_thresholds,
    mutual_information,
    soft_read_mutual_information,
)
from repro.flash import BlockGeometry, FlashChannel, FlashParameters
from repro.flash.cell import NUM_LEVELS
from repro.flash.thresholds import default_read_thresholds


@pytest.fixture
def params() -> FlashParameters:
    return FlashParameters()


@pytest.fixture
def channel(params) -> FlashChannel:
    return FlashChannel(params, geometry=BlockGeometry(32, 32),
                        rng=np.random.default_rng(0))


@pytest.fixture
def paired(channel):
    return channel.paired_blocks(4, 7000)


class TestMutualInformation:
    def test_independent_table_has_zero_information(self):
        joint = np.outer(np.full(4, 0.25), np.full(8, 0.125))
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-9)

    def test_identity_table_has_log2_levels(self):
        joint = np.eye(8) / 8.0
        assert mutual_information(joint) == pytest.approx(3.0)

    def test_partial_confusion_reduces_information(self):
        clean = np.eye(4) / 4.0
        noisy = 0.9 * clean + 0.1 * np.full((4, 4), 1.0 / 16.0)
        assert mutual_information(noisy) < mutual_information(clean)

    def test_unnormalised_counts_accepted(self):
        counts = np.eye(4) * 100.0
        assert mutual_information(counts) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mutual_information(np.zeros(4))
        with pytest.raises(ValueError):
            mutual_information(-np.ones((2, 2)))
        with pytest.raises(ValueError):
            mutual_information(np.zeros((2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10000))
    def test_information_bounded_by_marginal_entropy(self, seed):
        rng = np.random.default_rng(seed)
        joint = rng.random((NUM_LEVELS, 16))
        joint /= joint.sum()
        information = mutual_information(joint)
        rows = joint.sum(axis=1)
        row_entropy = -np.sum(rows[rows > 0] * np.log2(rows[rows > 0]))
        assert -1e-9 <= information <= row_entropy + 1e-9


class TestJointHistogram:
    def test_shape_and_normalisation(self, paired, params):
        program, voltages = paired
        joint = joint_level_voltage_histogram(program, voltages, num_bins=32,
                                              params=params)
        assert joint.shape == (NUM_LEVELS, 32)
        assert joint.sum() == pytest.approx(1.0)

    def test_levels_concentrate_in_distinct_bins(self, paired, params):
        program, voltages = paired
        joint = joint_level_voltage_histogram(program, voltages, num_bins=64,
                                              params=params)
        peak_bins = [int(np.argmax(joint[level])) for level in range(NUM_LEVELS)]
        assert len(set(peak_bins)) == NUM_LEVELS

    def test_validation(self, paired):
        program, voltages = paired
        with pytest.raises(ValueError):
            joint_level_voltage_histogram(program[:1], voltages)
        with pytest.raises(ValueError):
            joint_level_voltage_histogram(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            joint_level_voltage_histogram(program, voltages, num_bins=1)


class TestChannelInformationMetrics:
    def test_capacity_close_to_three_bits_on_healthy_channel(self, channel,
                                                             params):
        program, voltages = channel.paired_blocks(4, 1000)
        capacity = channel_capacity_estimate(program, voltages, params=params)
        assert 2.7 <= capacity <= 3.0

    def test_capacity_degrades_with_wear(self, channel, params):
        young_program, young_voltages = channel.paired_blocks(4, 1000)
        old_program, old_voltages = channel.paired_blocks(4, 10000)
        young = channel_capacity_estimate(young_program, young_voltages,
                                          params=params)
        old = channel_capacity_estimate(old_program, old_voltages,
                                        params=params)
        assert old < young

    def test_hard_decision_loses_information(self, paired, params):
        program, voltages = paired
        hard = hard_decision_mutual_information(program, voltages,
                                                params=params)
        soft = channel_capacity_estimate(program, voltages, params=params)
        assert 0.0 < hard <= soft + 1e-6

    def test_multi_read_recovers_part_of_the_gap(self, paired, params):
        """1 read < 3 reads < 7 reads per boundary, monotonically."""
        program, voltages = paired
        one = soft_read_mutual_information(program, voltages,
                                           num_reads_per_boundary=1,
                                           params=params)
        three = soft_read_mutual_information(program, voltages,
                                             num_reads_per_boundary=3,
                                             params=params)
        seven = soft_read_mutual_information(program, voltages,
                                             num_reads_per_boundary=7,
                                             params=params)
        assert one <= three <= seven
        hard = hard_decision_mutual_information(program, voltages,
                                                params=params)
        assert one == pytest.approx(hard, abs=1e-9)

    def test_validation(self, paired, params):
        program, voltages = paired
        with pytest.raises(ValueError):
            hard_decision_mutual_information(program[:1], voltages)
        with pytest.raises(ValueError):
            hard_decision_mutual_information(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            soft_read_mutual_information(program[:1], voltages)
        with pytest.raises(ValueError):
            soft_read_mutual_information(np.array([]), np.array([]))


class TestMultiReadThresholds:
    def test_single_read_matches_defaults(self, params):
        sensing = multi_read_thresholds(1, params=params)
        np.testing.assert_allclose(sensing, default_read_thresholds(params))

    def test_count_scales_with_reads(self, params):
        assert multi_read_thresholds(3, params=params).size == 21
        assert multi_read_thresholds(5, params=params).size == 35

    def test_sensing_levels_sorted(self, params):
        sensing = multi_read_thresholds(5, spread=8.0, params=params)
        assert np.all(np.diff(sensing) >= 0)

    def test_offsets_centred_on_defaults(self, params):
        sensing = multi_read_thresholds(3, spread=10.0, params=params)
        defaults = default_read_thresholds(params)
        grouped = sensing.reshape(len(defaults), 3)
        np.testing.assert_allclose(grouped.mean(axis=1), defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_read_thresholds(0)
        with pytest.raises(ValueError):
            multi_read_thresholds(3, spread=0.0)
