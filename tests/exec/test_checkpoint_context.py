"""Checkpoint refs keep pickled shard payloads small (the ProcessExecutor
fix) and thread ``checkpoint=`` through real sweep consumers.

Before this seam existed, ``ProcessExecutor`` pickled the full live channel
— model weights included — into every shard.  With a
:class:`repro.exec.ChannelRef` in the context the wire carries a registry
name and a path; the regression test pins the payload gap so the fix cannot
silently rot.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.channel import GenerativeChannel, build_channel, save_channel
from repro.ecc import LDPCCode, evaluate_ldpc_over_channel
from repro.exec import ChannelRef, MonteCarloPlan, run_plan
from repro.flash import BlockGeometry


def _noop(unit, rng, *, channel):
    return float(unit)


@pytest.fixture(scope="module")
def generative_checkpoint(tmp_path_factory):
    """An (untrained) tiny generative backend and its checkpoint."""
    from repro.core import ModelConfig, build_model

    model = build_model("cvae_gan", ModelConfig.tiny(),
                        rng=np.random.default_rng(1))
    channel = GenerativeChannel(model, rng=np.random.default_rng(2))
    path = tmp_path_factory.mktemp("zoo") / "cvae_gan-tiny"
    save_channel(channel, path)
    return channel, path


class TestPayloadRegression:
    def test_ref_shard_payload_stays_small(self, generative_checkpoint):
        channel, path = generative_checkpoint
        live_plan = MonteCarloPlan(task=_noop, units=(0, 1), seed=0,
                                   context={"channel": channel})
        ref_plan = MonteCarloPlan(task=_noop, units=(0, 1), seed=0,
                                  context={"channel":
                                           ChannelRef("cvae_gan", path)})
        live_payload = len(pickle.dumps(live_plan.shards(1)[0]))
        ref_payload = len(pickle.dumps(ref_plan.shards(1)[0]))
        # The ref ships a name and a path, not model weights: the payload
        # must stay in the hundreds of bytes, far below the live pickle.
        assert ref_payload < 4096
        assert ref_payload * 10 < live_payload

    def test_ref_pickle_roundtrips(self, generative_checkpoint):
        _, path = generative_checkpoint
        ref = ChannelRef("cvae_gan", path, cache_size=8)
        clone = pickle.loads(pickle.dumps(ref))
        assert clone.key() == ref.key()


class TestProcessRebuild:
    def test_process_pool_output_matches_live_context(self,
                                                      generative_checkpoint):
        """Workers rebuilding from the checkpoint reproduce the live-model
        sweep bit-identically."""
        channel, path = generative_checkpoint

        live_plan = MonteCarloPlan(task=_sample_sum, units=tuple(range(4)),
                                   seed=6, context={"channel": channel})
        ref_plan = MonteCarloPlan(task=_sample_sum, units=tuple(range(4)),
                                  seed=6,
                                  context={"channel":
                                           ChannelRef("cvae_gan", path)})
        reference = run_plan(live_plan, executor="serial")
        assert run_plan(ref_plan, executor="process", workers=2) == reference


def _sample_sum(unit, rng, *, channel):
    levels = rng.integers(0, 8, size=(1, 8, 8))
    voltages = channel.read_voltages(levels, 7000.0, rng=rng)
    return float(np.asarray(voltages, dtype=np.float64).sum())


class TestSweepConsumersAcceptRefs:
    def test_evaluate_ldpc_with_channel_ref_matches_live(self, tmp_path):
        """``checkpoint=`` threads end to end through a real campaign."""
        channel = build_channel("simulator", geometry=BlockGeometry(16, 16),
                                rng=np.random.default_rng(0))
        path = tmp_path / "simulator-ref"
        save_channel(channel, path)
        code = LDPCCode.regular(n=96, column_weight=3, row_weight=6,
                                rng=np.random.default_rng(1))
        kwargs = dict(num_codewords=4, group_size=2, seed=5)

        live = evaluate_ldpc_over_channel(code, channel, 10000, **kwargs)
        ref = ChannelRef.from_checkpoint(path)
        serial = evaluate_ldpc_over_channel(code, ref, 10000, **kwargs)
        sharded = evaluate_ldpc_over_channel(code, ref, 10000,
                                             executor="process", workers=2,
                                             **kwargs)
        np.testing.assert_array_equal(serial.frame_records,
                                      live.frame_records)
        np.testing.assert_array_equal(sharded.frame_records,
                                      live.frame_records)
        assert serial.frame_error_rate == live.frame_error_rate
