"""Elastic-scheduler battery: work stealing, heartbeats, grow/shrink.

The contract under test is the same as everywhere else in ``tests/exec/``:
**bit-identical reducers under any stealing schedule** — forced steals,
heartbeat-timed-out (SIGSTOPped) workers, and a fleet that grows via
:meth:`RemoteExecutor.attach` and shrinks via a mid-run kill must all leave
the output exactly equal to the serial reference.  The ``async`` executor's
coroutine path is covered here too.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.exec import (
    AsyncExecutor,
    MonteCarloPlan,
    RemoteExecutor,
    build_executor,
    run_plan,
)


def _tail_heavy(unit, rng, *, heavy_from, heavy_seconds):
    """An imbalanced plan: units past ``heavy_from`` are slow."""
    if int(unit) >= int(heavy_from):
        time.sleep(float(heavy_seconds))
    else:
        time.sleep(0.001)
    return float(unit) + float(rng.random())


def _stall_once(unit, rng, *, flag):
    """Silence the hosting worker the first time unit 0 runs anywhere.

    The worker's transport is patched to drop every outbound frame — the
    process stays alive and its socket open, but heartbeats and results
    stop flowing, the shape of a network partition or a preempted spot
    instance.  (A literal SIGSTOP would be the same shape, but this
    container's supervisor SIGCONTs stopped processes, so the partition is
    simulated at the transport layer instead.)  Only the heartbeat timeout
    can unstick the sweep.
    """
    value = float(unit) + float(rng.random())
    if int(unit) == 0 and not os.path.exists(flag):
        open(flag, "w").close()
        from repro.exec import transport

        def _blackhole(self, message):
            return None  # frames vanish; the socket stays open and silent

        transport.Connection.send = _blackhole
    return value


def _sleepy(unit, rng, *, seconds):
    time.sleep(float(seconds))
    return float(unit) + float(rng.random())


def _sync_value(unit, rng):
    return float(unit) + float(rng.random())


async def _awaited_value(unit, rng):
    await asyncio.sleep(0.001)
    return float(unit) + float(rng.random())


#: Cross-shard concurrency tracker for the async executor (shards share the
#: event-loop thread, so a module global is visible to all of them).
_CONCURRENCY = {"active": 0, "peak": 0}


async def _tracking_value(unit, rng):
    _CONCURRENCY["active"] += 1
    _CONCURRENCY["peak"] = max(_CONCURRENCY["peak"], _CONCURRENCY["active"])
    await asyncio.sleep(0.01)
    _CONCURRENCY["active"] -= 1
    return float(unit)


def _serve_worker():
    """Start a --serve worker; returns (process, address)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.exec.worker", "--serve",
         "127.0.0.1:0"],
        stdout=subprocess.PIPE, text=True)
    address = process.stdout.readline().split()[-1]
    return process, address


class TestWorkStealing:
    def test_forced_steal_stays_bit_identical(self):
        """Two static shards, all the weight in the second: the idle worker
        must steal the heavy tail, and the reduced output must not move."""
        plan = MonteCarloPlan(task=_tail_heavy, units=tuple(range(12)),
                              seed=29, context={"heavy_from": 6,
                                                "heavy_seconds": 0.1})
        reference = run_plan(plan, executor="serial")
        executor = RemoteExecutor(workers=2, steal=True, steal_wait=0.05,
                                  heartbeat_interval=0.05,
                                  straggler_wait=30.0)
        try:
            results = run_plan(plan, executor=executor, num_shards=2)
        finally:
            executor.close()
        assert results == reference
        assert executor.last_run_stats["steals"] >= 1
        assert executor.last_run_stats["heartbeats"] >= 1

    def test_steal_disabled_never_splits(self):
        plan = MonteCarloPlan(task=_tail_heavy, units=tuple(range(8)),
                              seed=29, context={"heavy_from": 4,
                                                "heavy_seconds": 0.05})
        reference = run_plan(plan, executor="serial")
        executor = RemoteExecutor(workers=2, steal=False,
                                  straggler_wait=30.0)
        try:
            results = run_plan(plan, executor=executor, num_shards=2)
        finally:
            executor.close()
        assert results == reference
        assert executor.last_run_stats["steals"] == 0
        assert executor.last_run_stats["steal_requests"] == 0

    def test_worker_death_under_stealing_schedule(self, tmp_path):
        """Post-ack death with aggressive stealing enabled: the retry and
        split machinery compose without double-counting a unit."""
        flag = tmp_path / "died"
        plan = MonteCarloPlan(task=_die_once_heavy, units=tuple(range(10)),
                              seed=31, context={"flag": str(flag)})
        flag.touch()
        reference = run_plan(plan, executor="serial")
        flag.unlink()
        executor = RemoteExecutor(workers=2, max_retries=2, steal=True,
                                  steal_wait=0.05, heartbeat_interval=0.05,
                                  straggler_wait=30.0)
        try:
            results = run_plan(plan, executor=executor, num_shards=2)
        finally:
            executor.close()
        assert results == reference
        assert executor.last_run_stats["worker_deaths"] >= 1


def _die_once_heavy(unit, rng, *, flag):
    """Slow units plus one worker suicide, to overlap retries with steals."""
    value = float(unit) + float(rng.random())
    if int(unit) == 3 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    time.sleep(0.02)
    return value


class TestHeartbeatTimeout:
    def test_silent_worker_drained_and_output_identical(self, tmp_path):
        """A silently stalled (partitioned) worker is detected by heartbeat
        timeout and drained like a death; the sweep completes bit-identical
        on the survivor — under a stealing schedule."""
        flag = tmp_path / "stalled"
        plan = MonteCarloPlan(task=_stall_once, units=tuple(range(8)),
                              seed=37, context={"flag": str(flag)})
        flag.touch()
        reference = run_plan(plan, executor="serial")
        flag.unlink()
        executor = RemoteExecutor(workers=2, max_retries=2, steal=True,
                                  steal_wait=0.05, heartbeat_interval=0.05,
                                  heartbeat_timeout=0.75,
                                  straggler_wait=30.0)
        try:
            results = run_plan(plan, executor=executor, num_shards=2)
        finally:
            executor.close()
        assert results == reference
        assert executor.last_run_stats["heartbeat_timeouts"] >= 1
        assert executor.last_run_stats["worker_deaths"] >= 1


class TestElasticFleet:
    def test_fleet_grows_and_shrinks_mid_run(self):
        """A --serve worker attached into an in-flight map_shards takes
        work (grow), is killed mid-run (shrink), and the output never
        moves."""
        plan = MonteCarloPlan(task=_sleepy, units=tuple(range(10)),
                              seed=41, context={"seconds": 0.2})
        reference = run_plan(plan, executor="serial")
        process, address = _serve_worker()
        executor = RemoteExecutor(workers=1, max_retries=3,
                                  heartbeat_interval=0.05,
                                  straggler_wait=30.0)
        failures = []

        def grow_then_shrink():
            try:
                time.sleep(0.2)
                executor.attach(address)
                time.sleep(0.4)
                process.kill()
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        helper = threading.Thread(target=grow_then_shrink)
        try:
            helper.start()
            results = run_plan(plan, executor=executor,
                               num_shards=plan.num_units)
            helper.join()
        finally:
            executor.close()
            process.kill()
            process.wait(timeout=10)
        assert not failures
        assert results == reference
        assert executor.last_run_stats["joins"] >= 1
        assert executor.last_run_stats["worker_deaths"] >= 1

    def test_attach_between_runs_joins_next_fleet(self):
        plan = MonteCarloPlan(task=_sync_value, units=tuple(range(6)),
                              seed=43)
        reference = run_plan(plan, executor="serial")
        process, address = _serve_worker()
        executor = RemoteExecutor(workers=1, straggler_wait=30.0)
        try:
            executor.attach(address)  # no run in flight: joins the fleet
            results = run_plan(plan, executor=executor)
            assert results == reference
        finally:
            executor.close()
            process.kill()
            process.wait(timeout=10)


class TestAsyncExecutor:
    def test_coroutine_task_matches_sync_serial_reference(self):
        sync_plan = MonteCarloPlan(task=_sync_value, units=tuple(range(10)),
                                   seed=47)
        async_plan = MonteCarloPlan(task=_awaited_value,
                                    units=tuple(range(10)), seed=47)
        reference = run_plan(sync_plan, executor="serial")
        assert run_plan(async_plan, executor="async", workers=3) == reference

    def test_sync_task_runs_unchanged(self):
        plan = MonteCarloPlan(task=_sync_value, units=tuple(range(7)),
                              seed=53)
        reference = run_plan(plan, executor="serial")
        assert run_plan(plan, executor="async", workers=2) == reference

    def test_concurrency_bounded_by_workers(self):
        _CONCURRENCY["active"] = _CONCURRENCY["peak"] = 0
        plan = MonteCarloPlan(task=_tracking_value, units=tuple(range(8)),
                              seed=59)
        run_plan(plan, executor="async", workers=2, num_shards=8)
        assert _CONCURRENCY["peak"] == 2

    def test_build_executor_resolves_async(self):
        executor = build_executor("async", workers=2)
        assert isinstance(executor, AsyncExecutor)
        assert executor.shares_memory is False

    def test_refuses_nested_event_loop(self):
        plan = MonteCarloPlan(task=_sync_value, units=tuple(range(2)),
                              seed=61)
        executor = AsyncExecutor(workers=1)

        async def inside_loop():
            executor.map_shards(plan.shards(1))

        with pytest.raises(RuntimeError, match="event loop"):
            asyncio.run(inside_loop())
