"""One conformance battery over every executor backend.

The determinism contract of ``repro.exec`` says the executor is a pure
throughput knob: for a fixed seed, every backend — serial, thread pool,
process pool, remote fleet — must produce bit-identical per-unit results,
identical reductions, the same merged condition-cache state, and must be
invariant under the ``shards_per_worker`` oversharding knob.  This battery
runs the same assertions over all four registered backends so a new
executor cannot land without honouring the contract.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys

import numpy as np
import pytest

from repro.channel import build_channel
from repro.exec import (
    MeanReducer,
    MonteCarloPlan,
    RecordReducer,
    RemoteExecutor,
    TallyReducer,
    build_executor,
    run_plan,
)
from repro.flash import BlockGeometry

BACKENDS = ("serial", "thread", "process", "async", "remote")
WORKERS = 2


def _draw_unit(unit, rng, *, scale):
    """A toy Monte-Carlo task: deterministic per-unit random draws."""
    return scale * float(unit) + float(rng.standard_normal(3).sum())


def _record_unit(unit, rng):
    """Array-valued results, for the stacking reducer."""
    return rng.integers(0, 100, size=3)


def _cached_draw(unit, rng, *, channel):
    """A task exercising the channel's per-condition LRU cache.

    The computed artifact is anchored to the unit rng (unlike e.g.
    ``level_error_rate_estimate``, which draws from the channel's own
    generator), so both the values and the cache traffic must be identical
    for every backend.
    """
    return channel.cache.get_or_compute(
        ("conformance", int(unit)), lambda: float(rng.random()))


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    """One long-lived executor per backend; the remote fleet (worker
    subprocesses) is spawned once for the whole battery."""
    if request.param == "remote":
        executor = RemoteExecutor(workers=WORKERS, straggler_wait=5.0)
    else:
        executor = build_executor(request.param, workers=WORKERS)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def plan():
    return MonteCarloPlan(task=_draw_unit, units=tuple(range(12)), seed=42,
                          context={"scale": 0.5})


@pytest.fixture(scope="module")
def reference(plan):
    return run_plan(plan, executor="serial")


class TestReducerConformance:
    def test_per_unit_results_bit_identical(self, backend, plan, reference):
        assert run_plan(plan, executor=backend) == reference

    def test_tally_and_mean_reductions_identical(self, backend, plan,
                                                 reference):
        assert run_plan(plan, reducer=TallyReducer(),
                        executor=backend) == sum(reference)
        assert run_plan(plan, reducer=MeanReducer(),
                        executor=backend) == np.mean(reference)

    def test_stacked_records_identical(self, backend):
        plan = MonteCarloPlan(task=_record_unit, units=tuple(range(9)),
                              seed=5)
        expected = run_plan(plan, reducer=RecordReducer(stack=True),
                            executor="serial")
        stacked = run_plan(plan, reducer=RecordReducer(stack=True),
                           executor=backend)
        np.testing.assert_array_equal(stacked, expected)


class TestCacheConformance:
    def _run(self, backend):
        channel = build_channel("simulator", geometry=BlockGeometry(16, 16),
                                rng=np.random.default_rng(0))
        plan = MonteCarloPlan(task=_cached_draw, units=tuple(range(4)),
                              seed=3, context={"channel": channel})
        results = run_plan(plan, executor=backend, num_shards=2)
        return results, channel.cache.stats()

    def test_results_and_final_cache_state_identical(self, backend):
        results, stats = self._run(backend)
        serial_results, _ = self._run("serial")
        assert results == serial_results
        # Whatever the topology, the parent ends up with every condition
        # computed exactly once and adopted into its cache.
        assert stats["size"] == 4
        assert stats["misses"] == 4
        assert stats["hits"] == 0

    def test_merge_counters_identical_across_isolating_backends(self,
                                                                backend):
        _, stats = self._run(backend)
        if backend.shares_memory:
            # Serial shards mutate the parent cache in place: no merges.
            assert stats["merges"] == 0
            assert stats["merged_entries"] == 0
        else:
            # Thread, process and remote all fold one snapshot per shard
            # back into the parent — identical counters for all three.
            assert stats["merges"] == 2
            assert stats["merged_entries"] == 4


class TestOvershardingConformance:
    @pytest.mark.parametrize("factor", [1, 3])
    def test_output_invariant_for_any_factor(self, backend, plan, reference,
                                             factor):
        oversharded = dataclasses.replace(plan, shards_per_worker=factor)
        assert run_plan(oversharded, executor=backend) == reference


class TestServeModeFleet:
    def test_hosts_fleet_matches_serial(self, plan, reference):
        """A pre-started ``--serve`` worker (the multi-host shape) conforms
        too."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker",
             "--serve", "127.0.0.1:0", "--once"],
            stdout=subprocess.PIPE, text=True)
        try:
            address = process.stdout.readline().split()[-1]
            executor = RemoteExecutor(hosts=[address], connect_timeout=5.0)
            try:
                assert run_plan(plan, executor=executor) == reference
            finally:
                executor.close()
        finally:
            process.terminate()
            process.wait(timeout=10)
