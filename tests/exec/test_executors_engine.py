"""Executor registry, engine dispatch and worker cache merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import ConditionCache, build_channel
from repro.exec import (
    EXECUTOR_REGISTRY,
    MonteCarloPlan,
    ProcessExecutor,
    SerialExecutor,
    TallyReducer,
    ThreadExecutor,
    build_executor,
    run_plan,
)
from repro.flash import BlockGeometry


def _draw(unit, rng):
    return float(rng.random())


def _paired_block_sum(unit, rng, *, channel):
    """Task hitting the simulator's internal rng swap (thread-unsafe if
    shards shared the channel object)."""
    program, voltages = channel.paired_blocks(1, 7000, rng=rng)
    return float(voltages.sum())


def _cached_estimate(unit, rng, *, channel):
    """Plan task exercising the channel's per-condition LRU cache."""
    return channel.level_error_rate_estimate(4000 + 1000 * int(unit),
                                             num_blocks=1)


class TestBuildExecutor:
    def test_registry_names(self):
        assert set(EXECUTOR_REGISTRY) == {"serial", "thread", "process",
                                          "async", "remote"}

    def test_remote_resolves_by_name(self):
        from repro.exec import RemoteExecutor

        backend = build_executor("remote", workers=2)
        try:
            assert isinstance(backend, RemoteExecutor)
            assert backend.workers == 2
        finally:
            backend.close()

    def test_auto_resolution(self):
        assert isinstance(build_executor("auto"), SerialExecutor)
        assert isinstance(build_executor("auto", workers=1), SerialExecutor)
        assert isinstance(build_executor("auto", workers=4), ProcessExecutor)

    def test_by_name(self):
        assert isinstance(build_executor("thread", workers=2), ThreadExecutor)
        assert build_executor("process", workers=3).workers == 3

    def test_instance_passthrough(self):
        backend = SerialExecutor()
        assert build_executor(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            build_executor("quantum")

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            build_executor("process", workers=0)


class TestRunPlan:
    @pytest.fixture
    def plan(self):
        return MonteCarloPlan(task=_draw, units=tuple(range(6)), seed=11)

    def test_default_returns_per_unit_results(self, plan):
        results = run_plan(plan)
        assert len(results) == 6

    def test_every_executor_agrees(self, plan):
        serial = run_plan(plan, executor="serial")
        thread = run_plan(plan, executor="thread", workers=2)
        process = run_plan(plan, executor="process", workers=2)
        assert serial == thread == process

    def test_thread_executor_isolates_stateful_context(self):
        """Shards must not race on the simulator's internal rng swap.

        The simulator adapter temporarily rebinds its sampler's generator
        around each read; without per-shard context isolation, concurrent
        thread shards cross-contaminate their streams and diverge from
        serial.
        """
        channel = build_channel("simulator", geometry=BlockGeometry(16, 16),
                                rng=np.random.default_rng(1))
        plan = MonteCarloPlan(task=_paired_block_sum,
                              units=tuple(range(16)), seed=2,
                              context={"channel": channel})
        serial = run_plan(plan, executor="serial")
        for _ in range(5):
            assert run_plan(plan, executor="thread", workers=8) == serial

    def test_num_shards_is_a_throughput_knob(self, plan):
        one = run_plan(plan, executor="serial", num_shards=1)
        many = run_plan(plan, executor="serial", num_shards=6)
        assert one == many

    def test_reducer_applied_to_unit_ordered_results(self, plan):
        total = run_plan(plan, reducer=TallyReducer(), executor="process",
                         workers=2)
        assert total == pytest.approx(sum(run_plan(plan)))


class TestWorkerCacheMerging:
    @pytest.fixture
    def channel(self):
        return build_channel("simulator", geometry=BlockGeometry(16, 16),
                             rng=np.random.default_rng(0))

    def _plan(self, channel, units=4):
        return MonteCarloPlan(task=_cached_estimate,
                              units=tuple(range(units)), seed=3,
                              context={"channel": channel})

    def test_process_pool_entries_fold_into_parent(self, channel):
        channel.cache.clear()
        run_plan(self._plan(channel), executor="process", workers=2)
        stats = channel.cache.stats()
        # Each worker computed its shard's conditions; the parent adopted
        # every entry even though no compute ran in this process.
        assert stats["size"] == 4
        assert stats["merges"] == 2
        assert stats["merged_entries"] == 4
        assert stats["misses"] == 4

    def test_merged_entries_serve_parent_hits(self, channel):
        channel.cache.clear()
        run_plan(self._plan(channel), executor="process", workers=2)
        before = channel.cache.stats()["misses"]
        # Re-running serially now hits the merged entries.
        run_plan(self._plan(channel), executor="serial")
        assert channel.cache.stats()["misses"] == before

    def test_serial_execution_does_not_double_count(self, channel):
        channel.cache.clear()
        run_plan(self._plan(channel), executor="serial")
        stats = channel.cache.stats()
        assert stats["merges"] == 0 and stats["misses"] == 4

    def test_merge_can_be_disabled(self, channel):
        channel.cache.clear()
        run_plan(self._plan(channel), executor="process", workers=2,
                 merge_caches=False)
        assert channel.cache.stats()["size"] == 0

    def test_explicit_cache_context_value_is_merged(self):
        cache = ConditionCache(maxsize=8)
        plan = MonteCarloPlan(task=_cache_filler, units=(0, 1), seed=0,
                              context={"cache": cache})
        run_plan(plan, executor="process", workers=2)
        assert cache.stats()["size"] == 2


def _cache_filler(unit, rng, *, cache):
    return cache.get_or_compute(int(unit), lambda: float(rng.random()))
