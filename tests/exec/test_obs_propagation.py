"""Observability conformance across executors, and under faults.

The tracing contract mirrors the determinism contract: the executor is a
pure throughput knob, so a traced run must produce the same span *tree*
(modulo timing and process ids) and the same merged metric totals on every
backend.  Under faults the accounting must stay exact: a straggler-dedup
loser's spans land on the timeline marked abandoned but its metrics are
never merged, so merged totals count every unit exactly once.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import (
    MonteCarloPlan,
    RemoteExecutor,
    build_executor,
    run_plan,
)
from repro.obs import metrics, trace

BACKENDS = ("serial", "thread", "process", "remote")
WORKERS = 2

# The propagation claim is about these spans; engine bookkeeping spans
# (exec.merge_caches) legitimately differ between memory-sharing and
# isolating backends.
TREE_SPANS = {"exec.plan", "exec.shard", "task.unit"}


def _traced_unit(unit, rng, *, scale):
    """A task that emits its own span and metric per unit."""
    with trace.span("task.unit", unit=int(unit)):
        metrics.get_registry().inc("task.units")
        return scale * float(unit) + float(rng.random())


def _slow_traced(unit, rng, *, flag):
    """Unit 5's first execution anywhere is a straggler."""
    with trace.span("task.unit", unit=int(unit)):
        metrics.get_registry().inc("task.units")
        value = float(unit) + float(rng.random())
    if int(unit) == 5 and not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(1.5)
    return value


def _die_traced(unit, rng, *, flag):
    """Kill the hosting worker the first time unit 0 runs anywhere."""
    with trace.span("task.unit", unit=int(unit)):
        metrics.get_registry().inc("task.units")
        value = float(unit) + float(rng.random())
    if int(unit) == 0 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    return value


def _boom(unit, rng):
    if int(unit) == 2:
        raise ValueError("boom at unit 2")
    return float(unit)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    trace.disable_tracing()
    metrics.process_registry().reset()
    yield
    trace.disable_tracing()
    metrics.process_registry().reset()


def _span_tree(records):
    """Multiset of (name, parent-name) edges for the propagation spans."""
    names = {r["span"]: r["name"] for r in records if r["type"] == "span"}
    edges = {}
    for record in records:
        if record["type"] != "span" or record.get("abandoned"):
            continue
        name = record["name"]
        if name not in TREE_SPANS:
            continue
        parent = names.get(record.get("parent"))
        edges[(name, parent)] = edges.get((name, parent), 0) + 1
    return edges


def _traced_run(plan, executor, num_shards=4):
    metrics.process_registry().reset()
    with trace.tracing() as tracer:
        results = run_plan(plan, executor=executor, num_shards=num_shards)
    return results, tracer.records, metrics.process_registry().totals()


class TestConformance:
    @pytest.fixture(scope="class")
    def plan(self):
        return MonteCarloPlan(task=_traced_unit, units=tuple(range(12)),
                              seed=42, context={"scale": 0.5})

    @pytest.fixture(scope="class")
    def reference(self, plan):
        return run_plan(plan, executor="serial", num_shards=4)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_span_tree_and_metric_totals_identical(self, backend_name, plan,
                                                   reference):
        if backend_name == "remote":
            executor = RemoteExecutor(workers=WORKERS, straggler_wait=5.0)
        else:
            executor = build_executor(backend_name, workers=WORKERS)
        try:
            results, records, totals = _traced_run(plan, executor)
        finally:
            executor.close()
        assert results == reference  # tracing must not perturb the numbers
        assert _span_tree(records) == {
            ("exec.plan", None): 1,
            ("exec.shard", "exec.plan"): 4,
            ("task.unit", "exec.shard"): 12,
        }
        assert totals["task.units"] == 12

    def test_untraced_run_counts_metrics_but_opens_no_spans(self, plan,
                                                            reference):
        # Metrics are always-on (plain counter bumps); spans are what the
        # tracing switch gates — an untraced run must hit only NOOP_SPAN.
        metrics.process_registry().reset()
        assert run_plan(plan, executor="serial", num_shards=4) == reference
        assert metrics.process_registry().totals() == {"task.units": 12}
        assert trace.span("probe") is trace.NOOP_SPAN


class TestFaultAccounting:
    def test_dedup_losers_abandoned_and_counted_once(self, tmp_path):
        flag = tmp_path / "slowed"
        plan = MonteCarloPlan(task=_slow_traced, units=tuple(range(6)),
                              seed=11, context={"flag": str(flag)})
        flag.touch()
        reference = run_plan(plan, executor="serial")
        flag.unlink()

        executor = RemoteExecutor(workers=2, straggler_wait=0.05,
                                  max_retries=1)
        try:
            results, records, totals = _traced_run(plan, executor,
                                                   num_shards=2)
            stats = executor.last_run_stats
        finally:
            executor.close()
        assert results == reference
        # Exactly one *winning* shard span per index, whatever raced.
        winners = {}
        for record in records:
            if record["type"] == "span" and record["name"] == "exec.shard" \
                    and not record.get("abandoned"):
                index = record["attrs"]["shard"]
                winners[index] = winners.get(index, 0) + 1
        assert winners == {0: 1, 1: 1}
        # Metrics are merged from winners only: every unit exactly once.
        assert totals["task.units"] == plan.num_units
        assert totals["exec.fleet.deduplicated"] == stats["deduplicated"]
        if stats["deduplicated"]:
            abandoned = [r for r in records if r.get("abandoned")]
            assert abandoned  # the loser's timeline survives as evidence
            event_names = [r["name"] for r in records
                           if r["type"] == "event"]
            assert "exec.dedup" in event_names

    def test_killed_worker_keeps_totals_exact(self, tmp_path):
        flag = tmp_path / "died"
        plan = MonteCarloPlan(task=_die_traced, units=tuple(range(8)),
                              seed=11, context={"flag": str(flag)})
        flag.touch()
        reference = run_plan(plan, executor="serial")
        flag.unlink()

        executor = RemoteExecutor(workers=2, max_retries=2,
                                  straggler_wait=10.0)
        try:
            results, records, totals = _traced_run(plan, executor)
            stats = executor.last_run_stats
        finally:
            executor.close()
        assert results == reference
        assert stats["worker_deaths"] >= 1
        # The dead attempt's envelope never came home, the retry's did:
        # merged totals still count every unit exactly once.
        assert totals["task.units"] == plan.num_units
        event_names = [r["name"] for r in records if r["type"] == "event"]
        assert "exec.worker_death" in event_names
        assert "exec.retry" in event_names

    def test_exhaustion_note_names_the_worker(self):
        plan = MonteCarloPlan(task=_boom, units=tuple(range(4)), seed=1)
        executor = RemoteExecutor(workers=2, max_retries=1, speculate=False)
        try:
            with pytest.raises(ValueError, match="boom at unit 2") as info:
                run_plan(plan, executor=executor)
        finally:
            executor.close()
        notes = "\n".join(getattr(info.value, "__notes__", ()))
        assert "worker pid" in notes
        assert "last span" in notes

    def test_worker_log_files_record_lifecycle(self, tmp_path):
        plan = MonteCarloPlan(task=_traced_unit, units=tuple(range(4)),
                              seed=3, context={"scale": 1.0})
        logdir = tmp_path / "wlogs"
        executor = RemoteExecutor(workers=2, worker_log_dir=logdir)
        try:
            run_plan(plan, executor=executor)
        finally:
            executor.close()
        import json

        logs = sorted(logdir.glob("worker-*.jsonl"))
        assert len(logs) == 2
        for path in logs:
            events = [json.loads(line)["event"]
                      for line in path.read_text().splitlines()]
            assert events[0] == "start"  # pre-connect: death evidence
            assert "connected" in events
            assert "session_start" in events
            assert events[-1] == "exit"
