"""Oversharding (``MonteCarloPlan.shards_per_worker``) is output-invariant.

The knob cuts a plan into ``workers * factor`` contiguous shards so pool
executors absorb per-unit cost variance.  Because randomness is anchored
per unit, the per-unit results — and therefore every reduction — must be
bit-identical for any factor and executor (the determinism contract of
``repro.exec``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.exec import MonteCarloPlan, run_plan
from repro.exec.executors import SerialExecutor


def draw_unit(unit, rng, scale=1.0):
    """A toy Monte-Carlo task: per-unit random draws."""
    return float(unit) * scale + rng.standard_normal(3).sum()


class RecordingExecutor(SerialExecutor):
    """Serial execution that records how many shards the engine cut."""

    def __init__(self, workers):
        super().__init__(workers)
        self.shard_counts: list[int] = []

    def map_shards(self, shards):
        self.shard_counts.append(len(shards))
        return super().map_shards(shards)


@pytest.fixture()
def plan():
    return MonteCarloPlan(task=draw_unit, units=tuple(range(24)), seed=42,
                          context={"scale": 0.5})


class TestValidation:
    def test_default_factor_is_one(self, plan):
        assert plan.shards_per_worker == 1

    @pytest.mark.parametrize("factor", [0, -1, 2.5])
    def test_invalid_factor_rejected(self, plan, factor):
        with pytest.raises(ValueError, match="shards_per_worker"):
            dataclasses.replace(plan, shards_per_worker=factor)


class TestEngineSharding:
    def test_engine_cuts_workers_times_factor_shards(self, plan):
        oversharded = dataclasses.replace(plan, shards_per_worker=3)
        backend = RecordingExecutor(workers=4)
        run_plan(oversharded, executor=backend)
        assert backend.shard_counts == [12]

    def test_factor_caps_at_unit_count(self, plan):
        oversharded = dataclasses.replace(plan, shards_per_worker=100)
        backend = RecordingExecutor(workers=4)
        run_plan(oversharded, executor=backend)
        assert backend.shard_counts == [plan.num_units]

    def test_explicit_num_shards_overrides_factor(self, plan):
        oversharded = dataclasses.replace(plan, shards_per_worker=3)
        backend = RecordingExecutor(workers=4)
        run_plan(oversharded, executor=backend, num_shards=2)
        assert backend.shard_counts == [2]


class TestDeterminism:
    def test_output_identical_for_any_factor_and_executor(self, plan):
        reference = run_plan(plan, executor="serial")
        for factor in (2, 4, 7):
            oversharded = dataclasses.replace(plan, shards_per_worker=factor)
            for executor, workers in (("serial", None), ("thread", 2),
                                      ("process", 2)):
                results = run_plan(oversharded, executor=executor,
                                   workers=workers)
                assert results == reference

    def test_oversharded_sweep_matches_unsharded_reduction(self, plan):
        from repro.exec.reducers import MeanReducer

        reference = run_plan(plan, reducer=MeanReducer(), executor="serial")
        oversharded = dataclasses.replace(plan, shards_per_worker=4)
        value = run_plan(oversharded, reducer=MeanReducer(),
                         executor="thread", workers=3)
        assert value == reference
