"""Unit tests for Monte-Carlo plans, shard splitting and reducers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import (
    HistogramReducer,
    MeanReducer,
    MonteCarloPlan,
    RecordReducer,
    TallyReducer,
    stable_seed,
)


def _draw(unit, rng, *, offset=0.0):
    return float(rng.random()) + offset


class TestStableSeed:
    def test_non_negative_ints_pass_through(self):
        assert stable_seed(3, 7000) == (3, 7000)

    def test_other_values_hash_deterministically(self):
        assert stable_seed("fig2", None) == stable_seed("fig2", None)
        assert stable_seed(4000.0) != stable_seed(7000.0)
        assert stable_seed(-1) == stable_seed(-1)

    def test_distinct_components_distinct_entropy(self):
        assert stable_seed("level") != stable_seed("erased")


class TestMonteCarloPlan:
    def test_rejects_empty_units_and_non_callables(self):
        with pytest.raises(ValueError):
            MonteCarloPlan(task=_draw, units=())
        with pytest.raises(TypeError):
            MonteCarloPlan(task=42, units=(1,))

    def test_unit_rng_is_per_unit_deterministic(self):
        plan = MonteCarloPlan(task=_draw, units=tuple(range(4)), seed=9)
        first = plan.unit_rng(2).random()
        again = plan.unit_rng(2).random()
        other = plan.unit_rng(3).random()
        assert first == again
        assert first != other
        with pytest.raises(IndexError):
            plan.unit_rng(4)

    def test_shards_cover_units_contiguously(self):
        plan = MonteCarloPlan(task=_draw, units=tuple(range(7)), seed=0)
        shards = plan.shards(3)
        assert [shard.units for shard in shards] == [(0, 1), (2, 3),
                                                     (4, 5, 6)]
        assert [shard.start for shard in shards] == [0, 2, 4]

    def test_shard_count_clamped_to_units(self):
        plan = MonteCarloPlan(task=_draw, units=(0, 1), seed=0)
        assert len(plan.shards(8)) == 2
        with pytest.raises(ValueError):
            plan.shards(0)

    def test_sharding_is_a_pure_throughput_knob(self):
        """Per-unit streams are identical for every shard layout."""
        plan = MonteCarloPlan(task=_draw, units=tuple(range(10)), seed=5)
        layouts = []
        for num_shards in (1, 2, 3, 10):
            results = []
            for shard in plan.shards(num_shards):
                results.extend(shard.run().results)
            layouts.append(results)
        for layout in layouts[1:]:
            assert layout == layouts[0]

    def test_context_reaches_the_task(self):
        plan = MonteCarloPlan(task=_draw, units=(0,), seed=0,
                              context={"offset": 10.0})
        assert plan.shards(1)[0].run().results[0] > 10.0


class TestTallyAndMeanReducers:
    def test_tally_sums_nested_structures(self):
        results = [{"errors": 1, "counts": np.array([1, 0])},
                   {"errors": 2, "counts": np.array([0, 3])}]
        total = TallyReducer().reduce(results)
        assert total["errors"] == 3
        np.testing.assert_array_equal(total["counts"], [1, 3])

    def test_tally_rejects_mismatched_keys_and_empty(self):
        with pytest.raises(ValueError):
            TallyReducer().reduce([{"a": 1}, {"b": 2}])
        with pytest.raises(ValueError):
            TallyReducer().reduce([])

    def test_mean_divides_by_unit_count(self):
        assert MeanReducer().reduce([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_matches_numpy_mean_of_scalars(self):
        values = list(np.random.default_rng(0).random(9))
        assert MeanReducer().reduce(values) == pytest.approx(np.mean(values))


class TestRecordReducer:
    def test_flattens_per_unit_record_lists(self):
        assert RecordReducer().reduce([[1, 2], 3, (4,)]) == [1, 2, 3, 4]

    def test_stack_concatenates_arrays_in_unit_order(self):
        groups = [np.arange(6).reshape(2, 3), np.arange(6, 9).reshape(1, 3)]
        stacked = RecordReducer(stack=True).reduce(groups)
        np.testing.assert_array_equal(stacked, np.arange(9).reshape(3, 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RecordReducer().reduce([])


class TestHistogramReducer:
    def test_key_union_with_summed_leaves(self):
        merged = HistogramReducer().reduce([
            {4000: {"a": 1, "shared": np.array([1.0, 0.0])}},
            {4000: {"b": 2, "shared": np.array([0.0, 2.0])}},
            {7000: {"a": 5}},
        ])
        assert merged[4000]["a"] == 1 and merged[4000]["b"] == 2
        np.testing.assert_array_equal(merged[4000]["shared"], [1.0, 2.0])
        assert merged[7000] == {"a": 5}

    def test_rejects_dict_vs_leaf_conflicts(self):
        with pytest.raises(ValueError):
            HistogramReducer().reduce([{"a": {"x": 1}}, {"a": 2}])

    def test_rejects_unsupported_leaves(self):
        with pytest.raises(ValueError):
            HistogramReducer().reduce([{"a": "x"}, {"a": "y"}])
