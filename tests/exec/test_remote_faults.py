"""Fault injection for the remote executor.

The distributed backend must stay on the determinism contract *under
failure*: a worker killed mid-shard, a fleet that cannot be reached, a
straggler racing its speculative duplicate, and a shard that fails past its
retry budget all have pinned behaviours — bit-identical output where the
run survives, a typed error carrying the original worker traceback where it
cannot.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import (
    MonteCarloPlan,
    RemoteExecutor,
    TallyReducer,
    TransportConnectError,
    run_plan,
)


def _die_once(unit, rng, *, flag):
    """Kill the hosting worker the first time unit 0 runs anywhere."""
    value = float(unit) + float(rng.random())
    if int(unit) == 0 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(17)
    return value


def _slow_once(unit, rng, *, flag):
    """Make unit 5's first execution a straggler (its re-run is fast)."""
    value = float(unit) + float(rng.random())
    if int(unit) == 5 and not os.path.exists(flag):
        open(flag, "w").close()
        time.sleep(1.5)
    return value


def _boom(unit, rng):
    """Deterministic task failure on unit 2, every attempt."""
    if int(unit) == 2:
        raise ValueError("boom at unit 2")
    return float(unit)


def _plan(task, units=8, **context):
    return MonteCarloPlan(task=task, units=tuple(range(units)), seed=11,
                          context=context)


class TestWorkerDeath:
    def test_kill_mid_shard_retries_and_stays_bit_identical(self, tmp_path):
        flag = tmp_path / "died"
        plan = _plan(_die_once, flag=str(flag))
        flag.touch()  # serial reference must not kill the test process
        reference = run_plan(plan, executor="serial")
        flag.unlink()

        executor = RemoteExecutor(workers=2, max_retries=2,
                                  straggler_wait=10.0)
        try:
            results = run_plan(plan, executor=executor)
        finally:
            executor.close()
        assert results == reference
        assert executor.last_run_stats["worker_deaths"] >= 1
        assert executor.last_run_stats["retries"] >= 1

    def test_fleet_replenished_after_death(self, tmp_path):
        """A later run on the same executor gets a full-strength fleet."""
        flag = tmp_path / "died"
        plan = _plan(_die_once, flag=str(flag))
        executor = RemoteExecutor(workers=2, max_retries=2,
                                  straggler_wait=10.0)
        try:
            run_plan(plan, executor=executor)  # kills one worker
            healthy = _plan(_die_once, flag=str(flag))  # flag now exists
            results = run_plan(healthy, executor=executor)
            assert len(results) == healthy.num_units
            assert executor.last_run_stats["worker_deaths"] == 0
        finally:
            executor.close()


class TestDeadTransport:
    def test_unreachable_fleet_raises_typed_error_fast(self):
        plan = _plan(_boom, units=2)
        executor = RemoteExecutor(hosts=["127.0.0.1:1"], connect_timeout=0.5)
        start = time.monotonic()
        try:
            with pytest.raises(TransportConnectError, match="127.0.0.1:1"):
                run_plan(plan, executor=executor)
        finally:
            executor.close()
        assert time.monotonic() - start < 10.0  # typed error, not a hang


class TestStragglerRedispatch:
    def test_duplicate_results_deduplicated_and_counted_once(self, tmp_path):
        flag = tmp_path / "slowed"
        plan = _plan(_slow_once, units=6, flag=str(flag))
        flag.touch()
        reference = run_plan(plan, executor="serial")
        tally_reference = run_plan(plan, reducer=TallyReducer(),
                                   executor="serial")
        flag.unlink()

        executor = RemoteExecutor(workers=2, straggler_wait=0.05,
                                  max_retries=1)
        try:
            results = run_plan(plan, executor=executor)
        finally:
            executor.close()
        # The idle worker speculatively re-ran the straggling shard; the
        # duplicate result was dropped, so every unit is counted exactly
        # once and the output is still bit-identical to serial.
        assert results == reference
        assert len(results) == plan.num_units
        assert sum(results) == tally_reference
        assert executor.last_run_stats["duplicates"] >= 1
        assert executor.last_run_stats["deduplicated"] >= 1


class TestSchedulerEdgeCases:
    def test_exhaustion_deferred_while_duplicate_copy_runs(self):
        """A duplicate copy's death must not fail a shard whose original is
        still running — speculation can never turn a survivable run fatal."""
        from repro.exec import ShardResult, TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=0, speculate=True,
                                    straggler_wait=0.0, max_copies=2)
        original_worker, duplicate_worker = object(), object()
        assert scheduler.next_shard(original_worker) is shard
        # Tail speculation: the only shard is immediately duplicated.
        assert scheduler.next_shard(duplicate_worker) is shard

        scheduler.worker_lost(duplicate_worker, shard,
                              TransportClosedError("duplicate died"))
        assert scheduler.fatal_error is None  # original still racing

        result = ShardResult(index=shard.index, start=shard.start,
                             results=[1.0] * len(shard.units))
        scheduler.completed(original_worker, result)
        assert scheduler.fatal_error is None
        assert scheduler.ordered_results() == [result]

    def test_unacked_dispatch_requeues_without_consuming_budget(self):
        """A death before the ack means the shard never started: re-queue
        freely, even with a zero retry budget."""
        from repro.exec import ShardResult, TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=0, speculate=False,
                                    straggler_wait=0.0, max_copies=2)
        lost_worker, healthy_worker = object(), object()
        assert scheduler.next_shard(lost_worker) is shard
        scheduler.worker_lost(lost_worker, shard,
                              TransportClosedError("died pre-ack"),
                              acked=False)
        assert scheduler.fatal_error is None
        assert scheduler.stats["unacked_redispatches"] == 1
        assert scheduler.next_shard(healthy_worker) is shard  # re-queued
        result = ShardResult(index=shard.index, start=shard.start,
                             results=[1.0] * len(shard.units))
        scheduler.completed(healthy_worker, result)
        assert scheduler.ordered_results() == [result]

    def test_exhaustion_fires_once_no_copy_is_left(self):
        from repro.exec import TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=0, speculate=True,
                                    straggler_wait=0.0, max_copies=2)
        workers = object(), object()
        for worker in workers:
            assert scheduler.next_shard(worker) is shard
        scheduler.worker_lost(workers[0], shard,
                              TransportClosedError("first died"))
        assert scheduler.fatal_error is None
        scheduler.worker_lost(workers[1], shard,
                              TransportClosedError("second died"))
        assert scheduler.fatal_error is not None

    def test_stale_requeued_spec_not_redispatched_after_completion(self):
        """Regression: a shard re-queued by ``_requeue_unacked`` whose
        presumed-lost copy then *wins* used to stay in the pending queue and
        be fully re-executed after completion.  The stale entry must be
        skipped at dispatch."""
        from repro.exec import ShardResult, TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=12)
        shard0, shard1, shard2 = plan.shards(3)
        scheduler = _ShardScheduler([shard0, shard1, shard2], max_retries=2,
                                    speculate=False, straggler_wait=10.0,
                                    max_copies=2, steal=False)
        worker_a, worker_b, worker_c = object(), object(), object()
        assert scheduler.next_shard(worker_a) is shard0
        assert scheduler.next_shard(worker_b) is shard1
        # The transport to worker A hiccups before the ack arrives: shard 0
        # is presumed never-started and re-queued for free...
        scheduler.worker_lost(worker_a, shard0,
                              TransportClosedError("presumed lost"),
                              acked=False)
        assert scheduler.stats["unacked_redispatches"] == 1
        # ... but the dispatch had actually landed, and its result wins.
        result0 = ShardResult(index=shard0.index, start=shard0.start,
                              results=[1.0] * len(shard0.units))
        scheduler.completed(worker_a, result0)
        # The next dispatch must skip the stale pending copy of shard 0 and
        # hand out the untouched shard 2 — not re-execute completed work.
        assert scheduler.next_shard(worker_c) is shard2
        assert scheduler.stats["stale_skips"] == 1
        assert scheduler.stats["dispatches"] == 3  # one per distinct shard

    def test_straggler_copies_each_wait_their_own_cycle(self):
        """Regression: staleness was keyed to the shard's *first* dispatch,
        so the moment one shard crossed ``straggler_wait`` every idle worker
        piled on duplicates up to ``max_copies`` in the same wait cycle.
        Each additional copy must wait its own ``straggler_wait`` from the
        previous dispatch."""
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=0, speculate=True,
                                    straggler_wait=0.2, max_copies=3,
                                    steal=False)
        first, second, third = object(), object(), object()
        assert scheduler.next_shard(first) is shard
        time.sleep(0.25)
        with scheduler._cond:
            assert scheduler._straggler_for(second) is shard
            # The fresh copy reset the staleness clock: a third copy may
            # not launch in the same wait cycle.
            assert scheduler._straggler_for(third) is None
        time.sleep(0.25)
        with scheduler._cond:
            assert scheduler._straggler_for(third) is shard

    def test_death_in_ack_to_start_window_consumes_budget(self):
        """A death *after* the ack — even before the first unit ran — counts
        against the retry budget: the shard reached the worker, so it may be
        poison."""
        from repro.exec import TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=1, speculate=False,
                                    straggler_wait=10.0, max_copies=2,
                                    steal=False)
        doomed, healthy = object(), object()
        assert scheduler.next_shard(doomed) is shard
        scheduler.acked(shard.index)
        scheduler.worker_lost(doomed, shard,
                              TransportClosedError("died between ack and "
                                                   "first unit"),
                              acked=True)
        assert scheduler.fatal_error is None
        assert scheduler.stats["retries"] == 1
        assert scheduler.next_shard(healthy) is shard

    def test_death_in_ack_to_start_window_fatal_without_budget(self):
        from repro.exec import TransportClosedError
        from repro.exec.remote import _ShardScheduler

        plan = _plan(_boom, units=4)
        [shard] = plan.shards(1)
        scheduler = _ShardScheduler([shard], max_retries=0, speculate=False,
                                    straggler_wait=10.0, max_copies=2,
                                    steal=False)
        worker = object()
        assert scheduler.next_shard(worker) is shard
        scheduler.acked(shard.index)
        scheduler.worker_lost(worker, shard,
                              TransportClosedError("died post-ack"),
                              acked=True)
        assert scheduler.fatal_error is not None


class TestWorkerMainFixup:
    def test_new_parent_script_replaces_previous_main(self, tmp_path):
        """A persistent ``--serve`` worker must rebind ``__main__`` when a
        parent running a *different* script connects, instead of resolving
        its tasks against the first parent's code."""
        import sys

        from repro.exec import worker

        script_a = tmp_path / "parent_a.py"
        script_a.write_text("MARKER = 'a'\n")
        script_b = tmp_path / "parent_b.py"
        script_b.write_text("MARKER = 'b'\n")
        saved_main = sys.modules.get("__main__")
        saved_mp = sys.modules.get("__mp_main__")
        saved_path = worker._main_fixup_path
        try:
            worker._fixup_main_module(str(script_a))
            assert sys.modules["__main__"].MARKER == "a"
            installed = sys.modules["__mp_main__"]
            worker._fixup_main_module(str(script_a))  # same parent: no-op
            assert sys.modules["__mp_main__"] is installed
            worker._fixup_main_module(str(script_b))  # new parent: rebind
            assert sys.modules["__main__"].MARKER == "b"
        finally:
            worker._main_fixup_path = saved_path
            for name, saved in (("__mp_main__", saved_mp),
                                ("__main__", saved_main)):
                if saved is None:
                    sys.modules.pop(name, None)
                else:
                    sys.modules[name] = saved


class TestFleetHealthProbe:
    def test_dead_serve_worker_detected_on_reuse(self):
        """A serving worker killed between runs must surface as a typed
        connect error on the next run (the ping probe catches the silently
        half-open connection), not a mid-sweep stall."""
        import subprocess
        import sys

        process = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker",
             "--serve", "127.0.0.1:0"],
            stdout=subprocess.PIPE, text=True)
        plan = _plan(_slow_once, units=4, flag="/nonexistent-flag")
        try:
            address = process.stdout.readline().split()[-1]
            executor = RemoteExecutor(hosts=[address], connect_timeout=1.0)
            try:
                first = run_plan(plan, executor=executor)
                assert len(first) == plan.num_units
                process.terminate()
                process.wait(timeout=10)
                with pytest.raises(TransportConnectError):
                    run_plan(plan, executor=executor)
            finally:
                executor.close()
        finally:
            process.kill()
            process.wait(timeout=10)


class TestRetryBudget:
    def test_exhaustion_surfaces_original_error_and_worker_traceback(self):
        plan = _plan(_boom, units=4)
        executor = RemoteExecutor(workers=2, max_retries=1, speculate=False)
        try:
            with pytest.raises(ValueError, match="boom at unit 2") as info:
                run_plan(plan, executor=executor)
        finally:
            executor.close()
        # max_retries=1 means two attempts total before giving up.
        assert executor.last_run_stats["retries"] == 1
        notes = "\n".join(getattr(info.value, "__notes__", ()))
        assert "retry budget 1" in notes
        assert "_boom" in notes  # the worker-side traceback rode along
