"""Sharded execution must be bit-identical to serial for a fixed seed.

These are the acceptance tests of the execution engine: the real consumers
— an LDPC frame-error campaign, a time-aware constrained-code schedule and
the Fig. 2 sweep — are run serially, with a 2-worker pool and with a
4-worker pool, and every array they produce must match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import build_channel
from repro.coding import TimeAwareCodeSelector, constraint_tradeoff_curve
from repro.ecc import LDPCCode, evaluate_ldpc_over_channel
from repro.experiments import run_fig2
from repro.flash import BlockGeometry

EXECUTIONS = (("serial", None), ("process", 2), ("process", 4))


@pytest.fixture(scope="module")
def channel():
    return build_channel("simulator", geometry=BlockGeometry(16, 16),
                         rng=np.random.default_rng(0))


class TestLDPCCampaignDeterminism:
    @pytest.fixture(scope="class")
    def results(self, channel):
        code = LDPCCode.regular(n=96, column_weight=3, row_weight=6,
                                rng=np.random.default_rng(1))
        return [evaluate_ldpc_over_channel(
                    code, channel, 10000, num_codewords=8, group_size=2,
                    seed=123, executor=executor, workers=workers)
                for executor, workers in EXECUTIONS]

    def test_frame_records_identical(self, results):
        serial, two, four = results
        np.testing.assert_array_equal(serial.frame_records,
                                      two.frame_records)
        np.testing.assert_array_equal(serial.frame_records,
                                      four.frame_records)

    def test_rates_identical(self, results):
        serial, two, four = results
        for other in (two, four):
            assert other.raw_bit_error_rate == serial.raw_bit_error_rate
            assert other.frame_error_rate == serial.frame_error_rate
            assert other.post_correction_bit_error_rate \
                == serial.post_correction_bit_error_rate

    def test_by_name_channel_reproducible_for_fixed_seed(self):
        """Two same-seed campaigns over a registry-name channel must agree.

        The LLR density table is estimated from blocks derived from the
        campaign seed, not from the freshly built channel's OS-entropy
        generator — otherwise each run would decode against a different
        table.
        """
        code = LDPCCode.regular(n=96, column_weight=3, row_weight=6,
                                rng=np.random.default_rng(2))
        runs = [evaluate_ldpc_over_channel(code, "simulator", 12000,
                                           num_codewords=8, group_size=4,
                                           seed=31)
                for _ in range(2)]
        np.testing.assert_array_equal(runs[0].frame_records,
                                      runs[1].frame_records)


class TestSelectorScheduleDeterminism:
    @pytest.fixture(scope="class")
    def schedules(self, channel):
        schedules = []
        for executor, workers in EXECUTIONS:
            selector = TimeAwareCodeSelector(
                channel, error_rate_target=5e-3, high_levels=(7, 6, 5),
                num_blocks=4, seed=77, executor=executor, workers=workers)
            schedules.append(selector.schedule((4000, 7000, 10000)))
        return schedules

    def test_error_rate_arrays_identical(self, schedules):
        serial, two, four = schedules
        reference = np.array([point.error_rate for point in serial])
        for other in (two, four):
            np.testing.assert_array_equal(
                np.array([point.error_rate for point in other]), reference)

    def test_selected_constraints_identical(self, schedules):
        serial, two, four = schedules
        reference = [point.high_level for point in serial]
        assert [point.high_level for point in two] == reference
        assert [point.high_level for point in four] == reference


class TestTradeoffCurveDeterminism:
    def test_points_identical_across_executors(self, channel):
        curves = [constraint_tradeoff_curve(
                      channel, 10000, high_levels=(6, 5), num_blocks=4,
                      seed=5, executor=executor, workers=workers)
                  for executor, workers in EXECUTIONS]
        reference = np.array([point.error_rate for point in curves[0]])
        for curve in curves[1:]:
            np.testing.assert_array_equal(
                np.array([point.error_rate for point in curve]), reference)


class TestFig2Determinism:
    def test_pattern_counts_identical_across_executors(self):
        results = []
        for executor, workers in EXECUTIONS:
            # A fresh, identically-seeded channel per run: the driver draws
            # its root seed from the channel's generator.
            channel = build_channel("simulator",
                                    geometry=BlockGeometry(32, 32),
                                    rng=np.random.default_rng(3))
            results.append(run_fig2(channel, blocks_per_pe=20,
                                    executor=executor, workers=workers))
        reference = results[0]
        for other in results[1:]:
            assert other.level_error_rates == reference.level_error_rates
            assert other.raw_pattern_counts == reference.raw_pattern_counts
