"""Table-driven coverage for worker-address parsing and formatting.

``parse_address`` historically split on the last colon, which mis-parsed
IPv6 literals: ``"::1:9000"`` yielded host ``"::1"`` only by luck of
``rpartition`` and ``"[::1]:9000"`` failed outright.  IPv6 hosts must now
be bracketed (the URL convention), and the unbracketed ambiguous forms are
rejected with a pointed error instead of silently guessed at.
"""

from __future__ import annotations

import socket

import pytest

from repro.exec.transport import format_address, parse_address


VALID = [
    ("7070", ("127.0.0.1", 7070)),          # bare port: localhost
    ("0", ("127.0.0.1", 0)),
    ("localhost:7070", ("localhost", 7070)),
    ("example.com:7070", ("example.com", 7070)),
    ("10.0.0.7:65535", ("10.0.0.7", 65535)),
    (" host:7070 ", ("host", 7070)),        # surrounding whitespace
    ("[::1]:9000", ("::1", 9000)),
    ("[2001:db8::1]:7070", ("2001:db8::1", 7070)),
    ("[fe80::1%eth0]:7070", ("fe80::1%eth0", 7070)),  # zone index
]

INVALID = [
    "::1:9000",          # unbracketed IPv6: ambiguous, must be bracketed
    "2001:db8::1",       # IPv6 literal with no port
    "[::1]",             # bracketed host, no port
    "[::1]:",            # empty port
    "[::1]9000",         # missing colon after the bracket
    "[::1:9000",         # unterminated bracket
    "[]:7070",           # empty bracketed host
    "host:",             # empty port
    "host:abc",          # non-numeric port
    ":7070",             # empty host
    "host:70707",        # port out of range
    "host:-1",
    "",
]


class TestParseAddress:
    @pytest.mark.parametrize("address,expected", VALID)
    def test_valid(self, address, expected):
        assert parse_address(address) == expected

    @pytest.mark.parametrize("address", INVALID)
    def test_invalid(self, address):
        with pytest.raises(ValueError):
            parse_address(address)

    def test_unbracketed_ipv6_error_names_the_fix(self):
        with pytest.raises(ValueError, match=r"bracket"):
            parse_address("::1:9000")


class TestFormatAddress:
    @pytest.mark.parametrize("host,port", [
        ("127.0.0.1", 7070),
        ("example.com", 0),
        ("::1", 9000),
        ("2001:db8::1", 7070),
    ])
    def test_round_trips_through_parse(self, host, port):
        assert parse_address(format_address(host, port)) == (host, port)

    def test_brackets_only_ipv6(self):
        assert format_address("10.0.0.7", 1) == "10.0.0.7:1"
        assert format_address("::1", 1) == "[::1]:1"


def _ipv6_loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET6, socket.SOCK_STREAM)
    except OSError:
        return False
    try:
        probe.bind(("::1", 0))
    except OSError:
        return False
    finally:
        probe.close()
    return True


@pytest.mark.skipif(not _ipv6_loopback_available(),
                    reason="no IPv6 loopback on this host")
class TestIPv6EndToEnd:
    def test_serve_worker_over_ipv6_loopback(self):
        """A --serve worker bound to [::1] completes a real sweep."""
        import subprocess
        import sys

        from repro.exec import MonteCarloPlan, RemoteExecutor, run_plan

        process = subprocess.Popen(
            [sys.executable, "-m", "repro.exec.worker",
             "--serve", "[::1]:0", "--once"],
            stdout=subprocess.PIPE, text=True)
        try:
            address = process.stdout.readline().split()[-1]
            assert address.startswith("[")
            plan = MonteCarloPlan(task=_unit_value, units=tuple(range(6)),
                                  seed=3)
            reference = run_plan(plan, executor="serial")
            executor = RemoteExecutor(hosts=[address], connect_timeout=5.0)
            try:
                assert run_plan(plan, executor=executor) == reference
            finally:
                executor.close()
        finally:
            process.kill()
            process.wait(timeout=10)


def _unit_value(unit, rng):
    return float(unit) + float(rng.random())
