"""Checkpoint-backed cold-start workers (the zoo -> exec seam).

A :class:`repro.exec.ChannelRef` in a plan context ships as a registry name
plus a checkpoint path; the executing worker — process pool or remote fleet
— rebuilds the channel through ``build_channel(name, checkpoint=path)``
(:mod:`repro.artifacts`).  These tests pin the two sides of that contract:
a cold-started worker produces bit-identical sweep output to an in-memory
model, and a corrupted checkpoint fails with the zoo's typed errors rather
than computing garbage tallies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts import CheckpointIntegrityError, ManifestError
from repro.channel import build_channel, save_channel
from repro.exec import ChannelRef, MonteCarloPlan, RemoteExecutor, run_plan
from repro.flash import BlockGeometry
from repro.flash.cell import NUM_LEVELS


def _voltage_sum(unit, rng, *, channel):
    """Read a small random stack at a per-unit condition."""
    levels = rng.integers(0, NUM_LEVELS, size=(1, 8, 8))
    voltages = channel.read_voltages(levels, 3000.0 + 500.0 * int(unit),
                                     rng=rng)
    return float(np.asarray(voltages).sum())


def _cached_probe(unit, rng, *, channel):
    """A unit-rng-anchored artifact served from the channel's cache."""
    return channel.cache.get_or_compute(("probe", int(unit)),
                                        lambda: float(rng.random()))


@pytest.fixture(scope="module")
def live_channel():
    return build_channel("simulator", geometry=BlockGeometry(16, 16),
                         rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory, live_channel):
    path = tmp_path_factory.mktemp("zoo") / "simulator-ref"
    save_channel(live_channel, path)
    return path


def _plan(channel):
    return MonteCarloPlan(task=_voltage_sum, units=tuple(range(6)), seed=9,
                          context={"channel": channel})


@pytest.fixture(scope="module")
def reference(live_channel):
    """The in-memory model's serial sweep output."""
    return run_plan(_plan(live_channel), executor="serial")


class TestColdStartEquivalence:
    def test_ref_resolves_registry_name_from_manifest(self, checkpoint):
        ref = ChannelRef.from_checkpoint(checkpoint)
        assert ref.name == "simulator"

    def test_serial_ref_matches_in_memory(self, checkpoint, reference):
        ref_plan = _plan(ChannelRef.from_checkpoint(checkpoint))
        assert run_plan(ref_plan, executor="serial") == reference

    def test_process_worker_cold_start_matches_in_memory(self, checkpoint,
                                                         reference):
        ref_plan = _plan(ChannelRef.from_checkpoint(checkpoint))
        assert run_plan(ref_plan, executor="process",
                        workers=2) == reference

    def test_remote_worker_cold_start_matches_in_memory(self, checkpoint,
                                                        reference):
        ref_plan = _plan(ChannelRef.from_checkpoint(checkpoint))
        executor = RemoteExecutor(workers=2, straggler_wait=5.0)
        try:
            assert run_plan(ref_plan, executor=executor) == reference
        finally:
            executor.close()

    def test_thread_pool_ref_snapshots_stay_independent(self, checkpoint):
        """Shards sharing one per-thread resolved channel must still report
        per-shard cache snapshots: a single pool thread running two shards
        of different sizes merges the true per-shard counters into the
        parent, not the last shard's counters twice."""
        ref = ChannelRef.from_checkpoint(checkpoint)
        plan = MonteCarloPlan(task=_cached_probe, units=(0, 1, 2), seed=4,
                              context={"channel": ref})
        serial = run_plan(plan, executor="serial")
        parent = ref.resolve()  # the parent-side bearer the engine merges into
        parent.cache.clear()
        results = run_plan(plan, executor="thread", workers=1, num_shards=2)
        assert results == serial
        stats = parent.cache.stats()
        assert stats["merges"] == 2
        assert stats["size"] == 3
        # Shard sizes are 1 and 2: aliased snapshots would double-count the
        # last shard (4 misses); independent snapshots report 1 + 2.
        assert stats["hits"] + stats["misses"] == 3


class TestCorruptedCheckpoint:
    @pytest.fixture()
    def corrupted(self, tmp_path, live_channel):
        """A generative checkpoint whose weights payload was tampered with."""
        from repro.core import ModelConfig, build_model

        model = build_model("cvae_gan", ModelConfig.tiny(),
                            rng=np.random.default_rng(1))
        path = tmp_path / "cvae_gan-corrupt"
        save_channel(model, path)
        weights = path / "weights.npz"
        weights.write_bytes(b"garbage" + weights.read_bytes()[7:])
        return path

    def test_process_worker_raises_typed_error(self, corrupted):
        plan = _plan(ChannelRef("cvae_gan", corrupted))
        with pytest.raises(CheckpointIntegrityError):
            run_plan(plan, executor="process", workers=2)

    def test_remote_worker_raises_typed_error(self, corrupted):
        plan = _plan(ChannelRef("cvae_gan", corrupted))
        executor = RemoteExecutor(workers=2, max_retries=0, speculate=False)
        try:
            with pytest.raises(CheckpointIntegrityError) as info:
                run_plan(plan, executor=executor)
        finally:
            executor.close()
        notes = "\n".join(getattr(info.value, "__notes__", ()))
        assert "CheckpointIntegrityError" in notes  # worker traceback

    def test_missing_manifest_raises_typed_error(self, tmp_path):
        plan = _plan(ChannelRef("simulator", tmp_path / "nowhere"))
        with pytest.raises(ManifestError):
            run_plan(plan, executor="serial")
