"""Tests for the experiment drivers (Figs. 2, 4, 5, 6 and Remark 3).

These tests use very small workloads and an *untrained* generative model —
they validate the plumbing of every driver (data flow, normalisation,
result/row/format contracts), while the benchmark harness produces the
full-quality numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GenerativeChannelModel, ModelConfig, build_model
from repro.data import generate_paired_dataset
from repro.experiments import (
    ExperimentSetup,
    PAPER_PE_CYCLES,
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_remark3,
)
from repro.flash import BlockGeometry, FlashChannel
from repro.flash.patterns import BITLINE, WORDLINE


@pytest.fixture(scope="module")
def channel():
    return FlashChannel(rng=np.random.default_rng(41))


@pytest.fixture(scope="module")
def untrained_model():
    config = ModelConfig.tiny()
    model = build_model("cvae_gan", config, rng=np.random.default_rng(42))
    return GenerativeChannelModel(model, rng=np.random.default_rng(43))


@pytest.fixture(scope="module")
def evaluation_arrays(channel):
    arrays = {}
    for pe in (4000, 7000):
        program, voltages = channel.paired_blocks(6, pe)
        # Crop to the tiny model's 8x8 array size.
        from repro.data import crop_blocks
        arrays[pe] = (crop_blocks(program, 8), crop_blocks(voltages, 8))
    return arrays


class TestExperimentSetup:
    def test_quick_scale_defaults(self):
        setup = ExperimentSetup(scale="quick", arrays_per_pe=4)
        assert setup.array_size == 16
        assert setup.model_config().array_size == 16

    def test_paper_scale_config(self):
        setup = ExperimentSetup(scale="paper", arrays_per_pe=4)
        assert setup.array_size == 64
        assert setup.model_config() == ModelConfig.paper()

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            ExperimentSetup(scale="huge")

    def test_dataset_cached(self):
        setup = ExperimentSetup(arrays_per_pe=4, pe_cycles=(4000,))
        assert setup.dataset() is setup.dataset()

    def test_paper_pe_cycles_constant(self):
        assert PAPER_PE_CYCLES == (4000, 7000, 10000)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, channel):
        return run_fig2(channel, blocks_per_pe=25)

    def test_covers_all_read_points(self, result):
        assert set(result.level_error_rates) == {4000, 7000, 10000}

    def test_error_rate_monotone(self, result):
        rates = result.level_error_rates
        assert rates[4000] < rates[10000]

    def test_reference_pattern_normalised_to_one(self, result):
        assert result.pattern_counts[("707", BITLINE)][4000] == pytest.approx(1.0)

    def test_pattern_counts_grow_with_wear(self, result):
        counts = result.pattern_counts[("707", BITLINE)]
        assert counts[10000] > counts[4000]

    def test_rows_and_format(self, result):
        rows = result.rows()
        assert len(rows) == 9
        text = result.format()
        assert "707" in text and "level_error_rate" in text

    def test_rejects_zero_blocks(self, channel):
        with pytest.raises(ValueError):
            run_fig2(channel, blocks_per_pe=0)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self, evaluation_arrays, untrained_model):
        return run_fig4(evaluation_arrays, untrained_model, bins=80)

    def test_measured_and_modeled_pdfs_present(self, result):
        assert set(result.measured) == {4000, 7000}
        assert set(result.modeled) == {4000, 7000}
        assert set(result.measured[4000]) == set(range(1, 8))

    def test_summary_rows_cover_levels_and_pe(self, result):
        rows = result.rows()
        assert len(rows) == 2 * 7
        assert {"pe_cycles", "level", "measured_peak", "modeled_peak",
                "tv_distance"} <= set(rows[0])

    def test_measured_peak_drops_with_wear(self, result):
        peaks = {row["pe_cycles"]: row["measured_peak"]
                 for row in result.rows() if row["level"] == 4}
        assert peaks[7000] < peaks[4000]

    def test_tv_distances_bounded(self, result):
        assert all(0.0 <= row["tv_distance"] <= 1.0 for row in result.rows())

    def test_format_mentions_fig4(self, result):
        assert "Fig. 4" in result.format()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, channel, evaluation_arrays, untrained_model):
        dataset = generate_paired_dataset(channel, pe_cycles=(4000, 7000),
                                          arrays_per_pe=30, array_size=32)
        return run_fig5(dataset, evaluation_arrays,
                        generative_model=untrained_model,
                        baseline_iterations=120,
                        rng=np.random.default_rng(7))

    def test_all_models_present(self, result):
        for pe in (4000, 7000):
            assert set(result.counts[pe]) == {"M", "cV-G", "G", "NL", "S't"}

    def test_measured_reference_normalised(self, result):
        assert result.counts[4000]["M"].sum() == pytest.approx(1.0)

    def test_measured_errors_grow_with_wear(self, result):
        totals = result.totals()
        assert totals[7000]["M"] > totals[4000]["M"]

    def test_statistical_fits_track_measured_totals(self, result):
        """The NL fit must land within a factor ~2 of the measured total."""
        totals = result.totals()
        for pe in (4000, 7000):
            assert 0.4 * totals[pe]["M"] < totals[pe]["NL"] < 2.5 * totals[pe]["M"]

    def test_rows_have_per_level_stacks(self, result):
        rows = result.rows()
        assert all(f"level_{index}" in rows[0] for index in range(1, 8))

    def test_format_contains_reference_note(self, result):
        assert "4000" in result.format()


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, untrained_model):
        # A dedicated channel: the measured pie must not depend on how much
        # of the module fixture's stream earlier test classes consumed.
        channel = FlashChannel(rng=np.random.default_rng(41))
        program, voltages = channel.paired_blocks(30, 7000)
        from repro.data import crop_blocks
        return run_fig6(crop_blocks(program, 8), crop_blocks(voltages, 8),
                        untrained_model, pe_cycles=7000)

    def test_profiles_for_both_directions(self, result):
        assert set(result.measured) == {WORDLINE, BITLINE}
        assert set(result.modeled) == {WORDLINE, BITLINE}

    def test_measured_bitline_dominated_by_707(self, result):
        frequencies = {key: value
                       for key, value in result.measured[BITLINE].items()
                       if not key.startswith("__")}
        assert max(frequencies, key=frequencies.get) == "707"

    def test_rank_agreement_bounded(self, result):
        for value in result.rank_agreement_top5.values():
            assert 0.0 <= value <= 1.0

    def test_rows_compare_measured_and_modeled(self, result):
        rows = result.rows()
        assert rows
        assert {"direction", "pattern", "measured_fraction",
                "modeled_fraction"} <= set(rows[0])

    def test_format_contains_pie_summaries(self, result):
        text = result.format()
        assert "measured (WL)" in text and "cVAE-GAN (BL)" in text


class TestRemark3:
    @pytest.fixture(scope="class")
    def result(self, channel):
        config = ModelConfig.tiny()
        dataset = generate_paired_dataset(channel, pe_cycles=(4000,),
                                          arrays_per_pe=16, array_size=8)
        from repro.data import crop_blocks
        program, voltages = channel.paired_blocks(4, 4000)
        evaluation = {4000: (crop_blocks(program, 8),
                             crop_blocks(voltages, 8))}
        return run_remark3(dataset, evaluation, config,
                           architectures=("cvae_gan", "cvae"), epochs=1,
                           seed=3)

    def test_requested_architectures_present(self, result):
        assert set(result.tv_distances) == {"cvae_gan", "cvae"}

    def test_tv_values_bounded(self, result):
        for by_pe in result.tv_distances.values():
            for value in by_pe.values():
                assert 0.0 <= value <= 1.0

    def test_best_architecture_is_one_of_the_candidates(self, result):
        assert result.best_architecture() in {"cvae_gan", "cvae"}

    def test_rows_and_format(self, result):
        rows = result.rows()
        assert len(rows) == 2
        assert "tv_mean" in rows[0]
        assert "Remark 3" in result.format()
