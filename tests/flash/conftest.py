"""Shared fixtures for the flash channel simulator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash import BlockGeometry, FlashChannel, FlashParameters


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


@pytest.fixture
def params() -> FlashParameters:
    return FlashParameters()


@pytest.fixture
def channel(rng) -> FlashChannel:
    return FlashChannel(rng=rng)


@pytest.fixture
def small_channel(rng) -> FlashChannel:
    """A channel with small 16x16 blocks for fast tests."""
    return FlashChannel(geometry=BlockGeometry(16, 16), rng=rng)
