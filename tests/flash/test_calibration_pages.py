"""Tests for read-threshold calibration and the page-level channel view."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    FlashChannel,
    FlashParameters,
    PAGE_NAMES,
    calibrate_thresholds,
    default_read_thresholds,
    hard_read,
    level_error_rate,
    optimal_threshold_between,
    optimal_thresholds_from_pdfs,
    page_bit_error_rates,
    page_bit_errors,
    program_pages,
    read_pages,
    threshold_sweep,
)
from repro.flash.cell import GRAY_MAP, NUM_LEVELS, levels_to_pages


class TestOptimalThresholdBetween:
    def test_separable_clusters_are_split(self):
        lower = np.array([1.0, 2.0, 3.0])
        upper = np.array([10.0, 11.0, 12.0])
        threshold = optimal_threshold_between(lower, upper)
        assert 3.0 < threshold < 10.0

    def test_threshold_achieves_zero_errors_when_separable(self):
        rng = np.random.default_rng(0)
        lower = rng.normal(100.0, 2.0, size=500)
        upper = rng.normal(160.0, 2.0, size=500)
        threshold = optimal_threshold_between(lower, upper)
        assert np.count_nonzero(lower > threshold) == 0
        assert np.count_nonzero(upper <= threshold) == 0

    def test_overlapping_clusters_minimise_errors(self):
        rng = np.random.default_rng(1)
        lower = rng.normal(100.0, 10.0, size=2000)
        upper = rng.normal(120.0, 10.0, size=2000)
        threshold = optimal_threshold_between(lower, upper)
        best_errors = (np.count_nonzero(lower > threshold)
                       + np.count_nonzero(upper <= threshold))
        # The optimal threshold must not be beaten by a coarse grid search.
        for candidate in np.linspace(80, 140, 121):
            errors = (np.count_nonzero(lower > candidate)
                      + np.count_nonzero(upper <= candidate))
            assert best_errors <= errors

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            optimal_threshold_between(np.array([]), np.array([1.0]))

    @settings(max_examples=20, deadline=None)
    @given(shift=st.floats(min_value=5.0, max_value=60.0))
    def test_threshold_lies_between_cluster_means(self, shift):
        rng = np.random.default_rng(3)
        lower = rng.normal(100.0, 1.0, size=200)
        upper = rng.normal(100.0 + shift, 1.0, size=200)
        threshold = optimal_threshold_between(lower, upper)
        assert lower.mean() < threshold < upper.mean()


class TestCalibrateThresholds:
    def test_calibration_never_hurts_on_training_data(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(6, 10000)
        result = calibrate_thresholds(program, voltages, params=params)
        assert result.error_rate <= result.default_error_rate

    def test_calibration_helps_on_worn_device(self, params, rng):
        """At 10000 P/E the default thresholds are stale; calibration wins."""
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(8, 10000)
        result = calibrate_thresholds(program, voltages, params=params)
        assert result.improvement > 0.0

    def test_thresholds_strictly_increasing(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(4, 7000)
        result = calibrate_thresholds(program, voltages, params=params)
        assert np.all(np.diff(result.thresholds) > 0)

    def test_default_thresholds_are_reported(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(2, 4000)
        result = calibrate_thresholds(program, voltages, params=params)
        np.testing.assert_allclose(result.default_thresholds,
                                   default_read_thresholds(params))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            calibrate_thresholds(np.zeros((4, 4), dtype=int), np.zeros((2, 2)))

    def test_improvement_zero_when_default_rate_zero(self):
        from repro.flash.calibration import CalibrationResult
        result = CalibrationResult(thresholds=np.arange(7.0),
                                   default_thresholds=np.arange(7.0),
                                   error_rate=0.0, default_error_rate=0.0)
        assert result.improvement == 0.0


class TestOptimalThresholdsFromPdfs:
    def test_gaussian_pdfs_give_midpoint_thresholds(self, params):
        grid = np.linspace(0, 650, 2000)
        means = params.means_array
        sigma = 8.0
        pdfs = np.stack([np.exp(-0.5 * ((grid - mean) / sigma) ** 2)
                         for mean in means])
        thresholds = optimal_thresholds_from_pdfs(pdfs, grid)
        midpoints = (means[:-1] + means[1:]) / 2
        np.testing.assert_allclose(thresholds, midpoints, atol=2.0)

    def test_unequal_priors_shift_the_boundary(self):
        grid = np.linspace(0, 100, 4000)
        pdfs = np.stack([
            np.exp(-0.5 * ((grid - 40.0) / 5.0) ** 2),
            np.exp(-0.5 * ((grid - 60.0) / 5.0) ** 2),
        ])
        balanced = optimal_thresholds_from_pdfs(pdfs, grid)
        skewed = optimal_thresholds_from_pdfs(pdfs, grid,
                                              priors=np.array([0.9, 0.1]))
        assert skewed[0] > balanced[0]

    def test_shape_validation(self):
        grid = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            optimal_thresholds_from_pdfs(np.zeros((3, 5)), grid)
        with pytest.raises(ValueError):
            optimal_thresholds_from_pdfs(np.zeros((3, 10)), grid[::-1])
        with pytest.raises(ValueError):
            optimal_thresholds_from_pdfs(np.zeros((3, 10)), grid,
                                         priors=np.array([0.5, 0.5]))


class TestThresholdSweep:
    def test_sweep_has_minimum_near_zero_offset_when_fresh(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(4, 1000)
        offsets = np.linspace(-30, 30, 13)
        rates = threshold_sweep(program, voltages, boundary=3, offsets=offsets,
                                params=params)
        best = offsets[np.nanargmin(rates)]
        assert abs(best) <= 15.0

    def test_invalid_boundary_rejected(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(1, 1000)
        with pytest.raises(ValueError):
            threshold_sweep(program, voltages, boundary=7,
                            offsets=np.array([0.0]), params=params)

    def test_crossing_offsets_yield_nan(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(1, 1000)
        rates = threshold_sweep(program, voltages, boundary=3,
                                offsets=np.array([-1000.0]), params=params)
        assert np.isnan(rates[0])


class TestPages:
    def test_program_pages_roundtrip(self, rng):
        shape = (16, 16)
        lower = rng.integers(0, 2, size=shape)
        middle = rng.integers(0, 2, size=shape)
        upper = rng.integers(0, 2, size=shape)
        levels = program_pages(lower, middle, upper)
        pages = levels_to_pages(levels)
        np.testing.assert_array_equal(pages[..., 0], lower)
        np.testing.assert_array_equal(pages[..., 1], middle)
        np.testing.assert_array_equal(pages[..., 2], upper)

    def test_program_pages_shape_mismatch(self):
        with pytest.raises(ValueError):
            program_pages(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3)))

    def test_read_pages_recovers_clean_data(self, params):
        levels = np.tile(np.arange(NUM_LEVELS), (8, 1))
        voltages = params.means_array[levels]
        lower, middle, upper = read_pages(voltages, params=params)
        expected = levels_to_pages(levels)
        np.testing.assert_array_equal(lower, expected[..., 0])
        np.testing.assert_array_equal(middle, expected[..., 1])
        np.testing.assert_array_equal(upper, expected[..., 2])

    def test_page_bit_errors_zero_for_clean_read(self, params):
        levels = np.tile(np.arange(NUM_LEVELS), (8, 1))
        voltages = params.means_array[levels]
        report = page_bit_errors(levels, voltages, params=params)
        assert report.total_bit_errors == 0
        assert report.rber() == 0.0

    def test_single_adjacent_level_error_flips_one_page_bit(self, params):
        """The Gray-mapping property: a one-step level error hits one page."""
        thresholds = default_read_thresholds(params)
        for level in range(NUM_LEVELS - 1):
            levels = np.array([[level]])
            # A voltage just above the boundary reads as level + 1.
            voltages = np.array([[thresholds[level] + 1.0]])
            report = page_bit_errors(levels, voltages, params=params)
            assert report.total_bit_errors == 1

    def test_page_rber_keys(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(2, 7000)
        rates = page_bit_error_rates(program, voltages, params=params)
        assert set(rates) == set(PAGE_NAMES)
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_page_rber_grows_with_wear(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        young_program, young_voltages = channel.paired_blocks(4, 1000)
        old_program, old_voltages = channel.paired_blocks(4, 10000)
        young = page_bit_error_rates(young_program, young_voltages,
                                     params=params)
        old = page_bit_error_rates(old_program, old_voltages, params=params)
        assert sum(old.values()) > sum(young.values())

    def test_report_unknown_page_rejected(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(1, 4000)
        report = page_bit_errors(program, voltages, params=params)
        with pytest.raises(KeyError):
            report.rber("top-secret")

    def test_report_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            page_bit_errors(np.zeros((2, 2), dtype=int), np.zeros((3, 3)))

    def test_total_bits_counts_three_pages(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(1, 4000)
        report = page_bit_errors(program, voltages, params=params)
        assert report.total_bits == 3 * program.size
