"""Tests for TLC program levels, the Gray mapping and page conversion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    BITS_PER_CELL,
    ERASED_LEVEL,
    GRAY_MAP,
    NUM_LEVELS,
    bits_to_level,
    level_to_bits,
    levels_to_pages,
    pages_to_levels,
)


class TestConstants:
    def test_tlc_has_eight_levels(self):
        assert NUM_LEVELS == 2 ** BITS_PER_CELL == 8

    def test_erased_level_is_zero(self):
        assert ERASED_LEVEL == 0

    def test_gray_map_covers_all_levels(self):
        assert set(GRAY_MAP) == set(range(NUM_LEVELS))

    def test_gray_map_values_are_distinct(self):
        assert len(set(GRAY_MAP.values())) == NUM_LEVELS

    def test_gray_property_adjacent_levels_differ_in_one_bit(self):
        """Adjacent program levels must differ in exactly one page bit."""
        for level in range(NUM_LEVELS - 1):
            bits_low = GRAY_MAP[level]
            bits_high = GRAY_MAP[level + 1]
            differences = sum(a != b for a, b in zip(bits_low, bits_high))
            assert differences == 1, (level, bits_low, bits_high)

    def test_paper_examples_from_fig1(self):
        """Fig. 1: level 7 stores 011 and the erased level stores 111."""
        assert GRAY_MAP[7] == (0, 1, 1)
        assert GRAY_MAP[0] == (1, 1, 1)
        assert GRAY_MAP[5] == (0, 0, 0)


class TestScalarConversion:
    @pytest.mark.parametrize("level", range(NUM_LEVELS))
    def test_roundtrip(self, level):
        assert bits_to_level(*level_to_bits(level)) == level

    def test_level_to_bits_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            level_to_bits(8)
        with pytest.raises(ValueError):
            level_to_bits(-1)

    def test_bits_to_level_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_level(2, 0, 0)


class TestArrayConversion:
    def test_levels_to_pages_shape(self, rng):
        levels = rng.integers(0, NUM_LEVELS, size=(4, 5))
        pages = levels_to_pages(levels)
        assert pages.shape == (4, 5, 3)

    def test_roundtrip_array(self, rng):
        levels = rng.integers(0, NUM_LEVELS, size=(6, 7))
        np.testing.assert_array_equal(pages_to_levels(levels_to_pages(levels)),
                                      levels)

    def test_levels_to_pages_rejects_invalid_levels(self):
        with pytest.raises(ValueError):
            levels_to_pages(np.array([[0, 9]]))

    def test_pages_to_levels_rejects_bad_last_dim(self):
        with pytest.raises(ValueError):
            pages_to_levels(np.zeros((3, 2), dtype=int))

    def test_pages_to_levels_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pages_to_levels(np.full((2, 3), 2, dtype=int))

    def test_matches_scalar_mapping(self):
        levels = np.arange(NUM_LEVELS)
        pages = levels_to_pages(levels)
        for level in range(NUM_LEVELS):
            assert tuple(pages[level]) == GRAY_MAP[level]

    @given(st.lists(st.integers(0, NUM_LEVELS - 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, level_list):
        levels = np.asarray(level_list)
        np.testing.assert_array_equal(pages_to_levels(levels_to_pages(levels)),
                                      levels)

    def test_single_level_error_flips_single_page_bit(self):
        """The Gray code confines an adjacent-level error to one page."""
        for level in range(NUM_LEVELS - 1):
            pages_a = levels_to_pages(np.array(level))
            pages_b = levels_to_pages(np.array(level + 1))
            assert int(np.sum(pages_a != pages_b)) == 1
