"""Tests for block geometry and the flash parameter dataclass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash import BlockGeometry, FlashParameters
from repro.flash.cell import NUM_LEVELS


class TestBlockGeometry:
    def test_default_block_is_64_by_64(self):
        geometry = BlockGeometry()
        assert geometry.shape == (64, 64)
        assert geometry.num_cells == 4096

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            BlockGeometry(0, 8)
        with pytest.raises(ValueError):
            BlockGeometry(8, -1)

    def test_interior_mask_excludes_boundary(self):
        geometry = BlockGeometry(4, 5)
        mask = geometry.interior_mask()
        assert mask.shape == (4, 5)
        assert not mask[0].any() and not mask[-1].any()
        assert not mask[:, 0].any() and not mask[:, -1].any()
        assert mask[1:-1, 1:-1].all()

    def test_interior_mask_small_block_empty(self):
        assert not BlockGeometry(2, 2).interior_mask().any()

    def test_contains(self):
        geometry = BlockGeometry(3, 3)
        assert geometry.contains(0, 0)
        assert geometry.contains(2, 2)
        assert not geometry.contains(3, 0)
        assert not geometry.contains(0, -1)

    def test_wordline_neighbours_interior(self):
        geometry = BlockGeometry(5, 5)
        assert geometry.wordline_neighbours(2, 2) == [(2, 1), (2, 3)]

    def test_bitline_neighbours_interior(self):
        geometry = BlockGeometry(5, 5)
        assert geometry.bitline_neighbours(2, 2) == [(1, 2), (3, 2)]

    def test_neighbours_at_boundary_are_clipped(self):
        geometry = BlockGeometry(5, 5)
        assert geometry.wordline_neighbours(0, 0) == [(0, 1)]
        assert geometry.bitline_neighbours(4, 4) == [(3, 4)]

    def test_geometry_is_hashable_and_frozen(self):
        geometry = BlockGeometry(8, 8)
        assert hash(geometry) == hash(BlockGeometry(8, 8))
        with pytest.raises(AttributeError):
            geometry.num_wordlines = 16


class TestFlashParameters:
    def test_defaults_are_valid(self):
        params = FlashParameters()
        assert len(params.level_means) == NUM_LEVELS
        assert len(params.level_sigmas) == NUM_LEVELS

    def test_level_means_increasing(self):
        params = FlashParameters()
        assert np.all(np.diff(params.means_array) > 0)

    def test_rejects_wrong_number_of_means(self):
        with pytest.raises(ValueError):
            FlashParameters(level_means=(1.0, 2.0))

    def test_rejects_unsorted_means(self):
        means = list(FlashParameters().level_means)
        means[2], means[3] = means[3], means[2]
        with pytest.raises(ValueError):
            FlashParameters(level_means=tuple(means))

    def test_rejects_non_positive_sigma(self):
        sigmas = list(FlashParameters().level_sigmas)
        sigmas[0] = 0.0
        with pytest.raises(ValueError):
            FlashParameters(level_sigmas=tuple(sigmas))

    def test_rejects_bad_attenuation(self):
        with pytest.raises(ValueError):
            FlashParameters(ici_program_attenuation=1.5)

    def test_rejects_bad_program_error_rate(self):
        with pytest.raises(ValueError):
            FlashParameters(program_error_rate=1.0)

    def test_rejects_bad_voltage_range(self):
        with pytest.raises(ValueError):
            FlashParameters(voltage_min=10.0, voltage_max=5.0)

    def test_rejects_non_positive_reference_cycles(self):
        with pytest.raises(ValueError):
            FlashParameters(reference_pe_cycles=0.0)

    def test_normalized_wear(self):
        params = FlashParameters(reference_pe_cycles=10000)
        assert params.normalized_wear(4000) == pytest.approx(0.4)
        np.testing.assert_allclose(params.normalized_wear([0, 10000]),
                                   [0.0, 1.0])

    def test_bitline_coupling_stronger_than_wordline(self):
        """The paper observes BL patterns are the most error prone."""
        params = FlashParameters()
        assert params.bl_coupling > params.wl_coupling

    def test_level_one_is_widest_programmed_level(self):
        """Level 1 dominates the error counts in Fig. 5."""
        sigmas = FlashParameters().sigmas_array
        assert sigmas[1] == max(sigmas[1:])
