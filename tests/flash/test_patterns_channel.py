"""Tests for pattern analysis, the flash channel and the cycling experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash import (
    BITLINE,
    WORDLINE,
    BlockGeometry,
    FlashChannel,
    FlashParameters,
    PECyclingExperiment,
    TOP_ERROR_PATTERNS,
    count_error_patterns,
    extract_bitline_patterns,
    extract_wordline_patterns,
    pattern_label,
    pattern_relative_frequencies,
    top_error_pattern_counts,
)
from repro.flash.cell import NUM_LEVELS
from repro.flash.patterns import decode_pattern


class TestPatternExtraction:
    def test_pattern_label(self):
        assert pattern_label(7, 0, 7) == "707"
        assert pattern_label(6, 0, 7) == "607"

    def test_pattern_label_rejects_invalid(self):
        with pytest.raises(ValueError):
            pattern_label(8, 0, 0)

    def test_decode_pattern_roundtrip(self):
        for pattern in ("707", "000", "123", "775"):
            code = (int(pattern[0]) * 64 + int(pattern[1]) * 8 + int(pattern[2]))
            assert decode_pattern(code) == pattern

    def test_wordline_patterns_shape(self, rng):
        levels = rng.integers(0, NUM_LEVELS, size=(6, 9))
        assert extract_wordline_patterns(levels).shape == (6, 7)

    def test_bitline_patterns_shape(self, rng):
        levels = rng.integers(0, NUM_LEVELS, size=(6, 9))
        assert extract_bitline_patterns(levels).shape == (4, 9)

    def test_wordline_pattern_values(self):
        levels = np.array([[7, 0, 7, 1]])
        patterns = extract_wordline_patterns(levels)
        assert decode_pattern(int(patterns[0, 0])) == "707"
        assert decode_pattern(int(patterns[0, 1])) == "071"

    def test_bitline_pattern_values(self):
        levels = np.array([[7], [0], [6]])
        patterns = extract_bitline_patterns(levels)
        assert decode_pattern(int(patterns[0, 0])) == "706"

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            extract_wordline_patterns(np.arange(5))

    def test_top_error_patterns_all_have_victim_zero(self):
        assert all(pattern[1] == "0" for pattern, _ in TOP_ERROR_PATTERNS)
        assert ("707", BITLINE) in TOP_ERROR_PATTERNS


class TestErrorPatternCounting:
    def test_no_errors_gives_empty_counter(self, params):
        levels = np.zeros((8, 8), dtype=int)
        voltages = np.full((8, 8), params.means_array[0])
        counts = count_error_patterns(levels, voltages, BITLINE, params=params)
        assert sum(counts.values()) == 0

    def test_constructed_error_is_attributed_to_its_pattern(self, params):
        """An erased victim pushed above Vth(01) counts toward its pattern."""
        levels = np.zeros((3, 3), dtype=int)
        levels[0, 1], levels[2, 1] = 7, 6          # BL pattern 706
        voltages = params.means_array[levels].astype(float)
        voltages[1, 1] = 120.0                     # above Vth(01)
        counts = count_error_patterns(levels, voltages, BITLINE, params=params)
        assert counts == {"706": 1}

    def test_wordline_direction_uses_row_neighbours(self, params):
        levels = np.zeros((3, 3), dtype=int)
        levels[1, 0], levels[1, 2] = 5, 7          # WL pattern 507
        voltages = params.means_array[levels].astype(float)
        voltages[1, 1] = 120.0
        counts = count_error_patterns(levels, voltages, WORDLINE, params=params)
        assert counts == {"507": 1}

    def test_non_victim_errors_ignored(self, params):
        levels = np.full((3, 3), 3, dtype=int)
        voltages = params.means_array[levels].astype(float)
        voltages[1, 1] = 500.0                     # error at level 3, not level 0
        counts = count_error_patterns(levels, voltages, BITLINE,
                                      victim_level=0, params=params)
        assert sum(counts.values()) == 0

    def test_custom_victim_level(self, params):
        levels = np.full((3, 3), 3, dtype=int)
        voltages = params.means_array[levels].astype(float)
        voltages[1, 1] = 500.0
        counts = count_error_patterns(levels, voltages, BITLINE,
                                      victim_level=3, params=params)
        assert counts == {"333": 1}

    def test_invalid_direction_rejected(self, params):
        with pytest.raises(ValueError):
            count_error_patterns(np.zeros((3, 3), dtype=int),
                                 np.zeros((3, 3)), "diagonal", params=params)

    def test_shape_mismatch_rejected(self, params):
        with pytest.raises(ValueError):
            count_error_patterns(np.zeros((3, 3), dtype=int),
                                 np.zeros((4, 4)), BITLINE, params=params)

    def test_relative_frequencies_sum_to_one(self, channel):
        program, voltages = channel.paired_blocks(20, 10000)
        counts = count_error_patterns(program, voltages, BITLINE)
        frequencies = pattern_relative_frequencies(counts)
        if frequencies:
            assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_relative_frequencies_empty_counter(self):
        assert pattern_relative_frequencies({}) == {}

    def test_top_error_pattern_counts_keys(self, channel):
        program, voltages = channel.paired_blocks(5, 7000)
        counts = top_error_pattern_counts(program, voltages)
        assert set(counts) == set(TOP_ERROR_PATTERNS)


class TestFlashChannel:
    def test_read_shape_matches_input(self, small_channel):
        levels = small_channel.program_random_block()
        assert small_channel.read(levels, 4000).shape == levels.shape

    def test_read_rejects_invalid_levels(self, small_channel):
        with pytest.raises(ValueError):
            small_channel.read(np.full((4, 4), 9), 4000)

    def test_read_rejects_negative_pe(self, small_channel):
        with pytest.raises(ValueError):
            small_channel.read(np.zeros((4, 4), dtype=int), -1)

    def test_read_rejects_one_dimensional(self, small_channel):
        with pytest.raises(ValueError):
            small_channel.read(np.zeros(4, dtype=int), 4000)

    def test_program_random_block_levels_valid(self, channel):
        block = channel.program_random_block()
        assert block.shape == channel.geometry.shape
        assert block.min() >= 0 and block.max() < NUM_LEVELS

    def test_program_random_block_covers_all_levels(self, channel):
        block = channel.program_random_block()
        assert len(np.unique(block)) == NUM_LEVELS

    def test_apply_program_errors_rate(self):
        params = FlashParameters(program_error_rate=0.05)
        channel = FlashChannel(params, rng=np.random.default_rng(1))
        levels = np.full((200, 200), 4)
        programmed = channel.apply_program_errors(levels)
        rate = np.mean(programmed != levels)
        assert 0.03 < rate < 0.07

    def test_apply_program_errors_adjacent_only(self):
        params = FlashParameters(program_error_rate=0.5)
        channel = FlashChannel(params, rng=np.random.default_rng(2))
        levels = np.full((50, 50), 4)
        programmed = channel.apply_program_errors(levels)
        assert set(np.unique(programmed)).issubset({3, 4, 5})

    def test_apply_program_errors_zero_rate_is_identity(self):
        params = FlashParameters(program_error_rate=0.0)
        channel = FlashChannel(params, rng=np.random.default_rng(3))
        levels = np.full((10, 10), 2)
        np.testing.assert_array_equal(channel.apply_program_errors(levels),
                                      levels)

    def test_read_hard_mostly_correct(self, channel):
        levels = channel.program_random_block()
        hard = channel.read_hard(levels, 4000)
        assert np.mean(hard == levels) > 0.95

    def test_paired_blocks_shapes(self, small_channel):
        program, voltages = small_channel.paired_blocks(3, 7000)
        assert program.shape == (3, 16, 16)
        assert voltages.shape == (3, 16, 16)

    def test_paired_blocks_rejects_zero_blocks(self, small_channel):
        with pytest.raises(ValueError):
            small_channel.paired_blocks(0, 4000)

    def test_ici_increases_erased_cell_voltage(self, params):
        channel = FlashChannel(params, rng=np.random.default_rng(5))
        levels = np.zeros((32, 32), dtype=int)
        levels[::2, :] = 7   # alternate rows of level 7: strong BL aggressors
        with_ici = channel.read(levels, 4000, apply_ici=True)
        channel_no = FlashChannel(params, rng=np.random.default_rng(5))
        without_ici = channel_no.read(levels, 4000, apply_ici=False)
        erased_mask = levels == 0
        assert with_ici[erased_mask].mean() > without_ici[erased_mask].mean() + 10

    def test_conditional_pdf_reference_integrates_to_one(self, channel):
        grid = np.linspace(0, 650, 2001)
        pdf = channel.conditional_pdf_reference(3, 7000, grid)
        assert np.trapezoid(pdf, grid) == pytest.approx(1.0, abs=1e-3)

    def test_bitline_patterns_more_error_prone_than_wordline(self):
        """Paper: pattern 707 in the BL direction is the most severe."""
        channel = FlashChannel(rng=np.random.default_rng(123))
        program, voltages = channel.paired_blocks(60, 7000)
        wl_counts = count_error_patterns(program, voltages, WORDLINE)
        bl_counts = count_error_patterns(program, voltages, BITLINE)
        wl_frequencies = pattern_relative_frequencies(wl_counts)
        bl_frequencies = pattern_relative_frequencies(bl_counts)
        assert bl_frequencies.get("707", 0) > wl_frequencies.get("707", 0)
        # 707 must be the dominant BL pattern.
        assert max(bl_frequencies, key=bl_frequencies.get) == "707"


class TestCyclingExperiment:
    def test_default_read_points(self):
        experiment = PECyclingExperiment(blocks_per_read_point=1)
        assert experiment.read_points == (4000, 7000, 10000)

    def test_run_returns_one_record_per_read_point(self, rng):
        channel = FlashChannel(geometry=BlockGeometry(16, 16), rng=rng)
        experiment = PECyclingExperiment(channel=channel,
                                         read_points=(1000, 2000),
                                         blocks_per_read_point=2)
        records = experiment.run()
        assert [record.pe_cycles for record in records] == [1000, 2000]
        assert all(record.num_blocks == 2 for record in records)

    def test_record_properties(self, rng):
        channel = FlashChannel(geometry=BlockGeometry(8, 8), rng=rng)
        experiment = PECyclingExperiment(channel=channel, read_points=(4000,),
                                         blocks_per_read_point=3)
        record = experiment.run()[0]
        assert record.num_cells == 3 * 64
        assert 0.0 <= record.level_error_rate() <= 1.0

    def test_run_as_dict_keys(self, rng):
        channel = FlashChannel(geometry=BlockGeometry(8, 8), rng=rng)
        experiment = PECyclingExperiment(channel=channel,
                                         blocks_per_read_point=1)
        assert set(experiment.run_as_dict()) == {4000, 7000, 10000}

    def test_rejects_empty_read_points(self):
        with pytest.raises(ValueError):
            PECyclingExperiment(read_points=())

    def test_rejects_non_positive_read_points(self):
        with pytest.raises(ValueError):
            PECyclingExperiment(read_points=(0,))

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            PECyclingExperiment(blocks_per_read_point=0)
