"""Tests for the retention (charge-loss) and read-disturb models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    FlashChannel,
    FlashParameters,
    ReadDisturbModel,
    ReadDisturbParameters,
    RetentionModel,
    RetentionParameters,
    level_error_rate,
)
from repro.flash.cell import ERASED_LEVEL, NUM_LEVELS


@pytest.fixture
def retention(params) -> RetentionModel:
    return RetentionModel(params)


@pytest.fixture
def disturb(params) -> ReadDisturbModel:
    return ReadDisturbModel(params)


class TestRetentionParameters:
    def test_default_construction(self):
        retention = RetentionParameters()
        assert retention.reference_hours > 0

    @pytest.mark.parametrize("field, value", [
        ("reference_hours", 0.0),
        ("reference_hours", -1.0),
        ("drift_scale", -0.5),
        ("wear_acceleration", -0.1),
        ("sigma_growth", -0.2),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            RetentionParameters(**{field: value})


class TestRetentionModel:
    def test_time_factor_zero_at_zero(self, retention):
        assert retention.time_factor(0.0) == 0.0

    def test_time_factor_one_at_reference(self, retention):
        assert retention.time_factor(
            retention.retention.reference_hours) == pytest.approx(1.0)

    def test_time_factor_monotone(self, retention):
        hours = [0, 10, 100, 1000, 10000]
        factors = [retention.time_factor(h) for h in hours]
        assert factors == sorted(factors)

    def test_time_factor_rejects_negative(self, retention):
        with pytest.raises(ValueError):
            retention.time_factor(-1.0)

    def test_wear_factor_one_for_fresh_block(self, retention):
        assert retention.wear_factor(0.0) == pytest.approx(1.0)

    def test_wear_accelerates_loss(self, retention):
        assert retention.wear_factor(10000) > retention.wear_factor(1000)

    def test_mean_shift_is_non_positive(self, retention):
        levels = np.arange(NUM_LEVELS)
        shift = retention.mean_shift(levels, 5000, 500)
        assert np.all(shift <= 0)

    def test_erased_level_unaffected(self, retention):
        shift = retention.mean_shift(np.array([ERASED_LEVEL]), 10000, 5000)
        assert shift[0] == 0.0

    def test_higher_levels_lose_more_charge(self, retention):
        levels = np.arange(NUM_LEVELS)
        shift = retention.mean_shift(levels, 10000, 1000)
        assert shift[7] < shift[1] < 0

    def test_sigma_inflation_at_least_one(self, retention):
        assert retention.sigma_inflation(0.0) == pytest.approx(1.0)
        assert retention.sigma_inflation(1000.0) > 1.0

    def test_apply_zero_hours_is_identity(self, retention, rng):
        voltages = rng.uniform(0, 650, size=(8, 8))
        levels = rng.integers(0, NUM_LEVELS, size=(8, 8))
        result = retention.apply(voltages, levels, 5000, 0.0, rng=rng)
        np.testing.assert_array_equal(result, voltages)

    def test_apply_returns_copy_not_view(self, retention, rng):
        voltages = rng.uniform(0, 650, size=(4, 4))
        levels = rng.integers(0, NUM_LEVELS, size=(4, 4))
        result = retention.apply(voltages, levels, 5000, 0.0, rng=rng)
        result += 1.0
        assert not np.allclose(result, voltages)

    def test_apply_shifts_programmed_levels_down_on_average(self, retention,
                                                            params, rng):
        levels = np.full((64, 64), 7)
        voltages = np.full((64, 64), params.level_means[7], dtype=float)
        shifted = retention.apply(voltages, levels, 10000, 2000, rng=rng)
        assert shifted.mean() < voltages.mean()

    def test_apply_shape_mismatch_rejected(self, retention, rng):
        with pytest.raises(ValueError):
            retention.apply(np.zeros((4, 4)), np.zeros((5, 5), dtype=int),
                            1000, 10.0, rng=rng)

    def test_apply_respects_voltage_clip_range(self, retention, params, rng):
        levels = np.full((32, 32), 7)
        voltages = np.full((32, 32), params.voltage_max, dtype=float)
        shifted = retention.apply(voltages, levels, 10000, 10000, rng=rng)
        assert shifted.max() <= params.voltage_max
        assert shifted.min() >= params.voltage_min

    def test_longer_retention_increases_error_rate(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        retention = RetentionModel(params)
        program, voltages = channel.paired_blocks(4, 7000)
        fresh_rate = level_error_rate(program, voltages, params=params)
        aged = retention.apply(voltages, program, 7000, 5000,
                               rng=np.random.default_rng(7))
        aged_rate = level_error_rate(program, aged, params=params)
        assert aged_rate > fresh_rate

    @settings(max_examples=25, deadline=None)
    @given(hours=st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False))
    def test_time_factor_always_non_negative(self, hours):
        retention = RetentionModel()
        assert retention.time_factor(hours) >= 0.0


class TestReadDisturbParameters:
    @pytest.mark.parametrize("field, value", [
        ("reference_reads", 0.0),
        ("shift_scale", -1.0),
        ("level_attenuation", 0.0),
        ("level_attenuation", 1.5),
        ("wear_acceleration", -0.5),
        ("jitter_fraction", -0.1),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            ReadDisturbParameters(**{field: value})


class TestReadDisturbModel:
    def test_read_factor_zero_at_zero(self, disturb):
        assert disturb.read_factor(0) == 0.0

    def test_read_factor_one_at_reference(self, disturb):
        assert disturb.read_factor(
            disturb.disturb.reference_reads) == pytest.approx(1.0)

    def test_read_factor_monotone(self, disturb):
        counts = [0, 100, 10000, 1000000]
        factors = [disturb.read_factor(count) for count in counts]
        assert factors == sorted(factors)

    def test_read_factor_rejects_negative(self, disturb):
        with pytest.raises(ValueError):
            disturb.read_factor(-5)

    def test_mean_shift_is_non_negative(self, disturb):
        levels = np.arange(NUM_LEVELS)
        shift = disturb.mean_shift(levels, 5000, 50000)
        assert np.all(shift >= 0)

    def test_erased_level_most_disturbed(self, disturb):
        levels = np.arange(NUM_LEVELS)
        shift = disturb.mean_shift(levels, 5000, 50000)
        assert shift[ERASED_LEVEL] == shift.max()
        assert shift[7] < shift[ERASED_LEVEL]

    def test_shift_decays_monotonically_with_level(self, disturb):
        levels = np.arange(NUM_LEVELS)
        shift = disturb.mean_shift(levels, 5000, 50000)
        assert np.all(np.diff(shift) < 0)

    def test_wear_amplifies_disturb(self, disturb):
        level = np.array([ERASED_LEVEL])
        fresh = disturb.mean_shift(level, 0, 50000)
        worn = disturb.mean_shift(level, 10000, 50000)
        assert worn[0] > fresh[0]

    def test_apply_zero_reads_is_identity(self, disturb, rng):
        voltages = rng.uniform(0, 650, size=(8, 8))
        levels = rng.integers(0, NUM_LEVELS, size=(8, 8))
        result = disturb.apply(voltages, levels, 5000, 0, rng=rng)
        np.testing.assert_array_equal(result, voltages)

    def test_apply_moves_erased_cells_up(self, disturb, params, rng):
        levels = np.full((64, 64), ERASED_LEVEL)
        voltages = np.full((64, 64), params.level_means[0], dtype=float)
        disturbed = disturb.apply(voltages, levels, 10000, 500000, rng=rng)
        assert disturbed.mean() > voltages.mean()

    def test_apply_shape_mismatch_rejected(self, disturb, rng):
        with pytest.raises(ValueError):
            disturb.apply(np.zeros((4, 4)), np.zeros((2, 2), dtype=int),
                          1000, 10, rng=rng)

    def test_many_reads_increase_error_rate(self, params, rng):
        channel = FlashChannel(params, rng=rng)
        disturb = ReadDisturbModel(params)
        program, voltages = channel.paired_blocks(4, 7000)
        base_rate = level_error_rate(program, voltages, params=params)
        heavy = disturb.apply(voltages, program, 7000, 2000000,
                              rng=np.random.default_rng(11))
        heavy_rate = level_error_rate(program, heavy, params=params)
        assert heavy_rate > base_rate

    def test_erased_error_probability_increases_with_reads(self, disturb,
                                                           params):
        threshold = (params.level_means[0] + params.level_means[1]) / 2
        quiet = disturb.erased_error_probability(5000, 0, threshold)
        noisy = disturb.erased_error_probability(5000, 1000000, threshold)
        assert noisy > quiet

    @settings(max_examples=25, deadline=None)
    @given(reads=st.floats(min_value=0.0, max_value=1e8,
                           allow_nan=False, allow_infinity=False))
    def test_read_factor_always_non_negative(self, reads):
        disturb = ReadDisturbModel()
        assert disturb.read_factor(reads) >= 0.0


class TestCombinedDegradation:
    def test_retention_and_disturb_compose(self, params, rng):
        """Both mechanisms can be applied to the same read without conflict."""
        channel = FlashChannel(params, rng=rng)
        program, voltages = channel.paired_blocks(2, 7000)
        retention = RetentionModel(params)
        disturb = ReadDisturbModel(params)
        aged = retention.apply(voltages, program, 7000, 1000,
                               rng=np.random.default_rng(3))
        aged_and_read = disturb.apply(aged, program, 7000, 100000,
                                      rng=np.random.default_rng(4))
        assert aged_and_read.shape == voltages.shape
        assert np.all(aged_and_read >= params.voltage_min)
        assert np.all(aged_and_read <= params.voltage_max)
