"""Tests for the data scrambler and the endurance sweep."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    EnduranceSweep,
    FlashChannel,
    LFSR,
    Scrambler,
    estimate_endurance_limit,
)
from repro.flash.cell import NUM_LEVELS
from repro.flash.endurance import EndurancePoint
from repro.flash.geometry import BlockGeometry


class TestLFSR:
    def test_output_bits_are_binary(self):
        lfsr = LFSR(seed=1)
        bits = lfsr.bits(256)
        assert set(np.unique(bits)) <= {0, 1}

    def test_deterministic_for_a_seed(self):
        first = LFSR(seed=0xBEEF).bits(128)
        second = LFSR(seed=0xBEEF).bits(128)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        first = LFSR(seed=0x1).bits(128)
        second = LFSR(seed=0x2).bits(128)
        assert not np.array_equal(first, second)

    def test_reset_restores_the_sequence(self):
        lfsr = LFSR(seed=0xACE1)
        first = lfsr.bits(64)
        lfsr.reset()
        second = lfsr.bits(64)
        np.testing.assert_array_equal(first, second)

    def test_default_polynomial_is_maximum_length(self):
        lfsr = LFSR(seed=1)
        assert lfsr.period() == 2 ** 16 - 1

    def test_keystream_is_roughly_balanced(self):
        bits = LFSR(seed=0x1234).bits(4096)
        assert 0.45 < bits.mean() < 0.55

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LFSR(seed=0)
        with pytest.raises(ValueError):
            LFSR(seed=1, width=1)
        with pytest.raises(ValueError):
            LFSR(seed=1, taps=())
        with pytest.raises(ValueError):
            LFSR(seed=1, taps=(99,))
        with pytest.raises(ValueError):
            LFSR(seed=2 ** 16, width=16)

    def test_bits_rejects_negative_count(self):
        with pytest.raises(ValueError):
            LFSR(seed=1).bits(-1)


class TestScrambler:
    def test_scramble_descramble_bits_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=512)
        scrambler = Scrambler(seed=0x5A5A)
        np.testing.assert_array_equal(
            scrambler.descramble_bits(scrambler.scramble_bits(data)), data)

    def test_scramble_changes_the_data(self):
        data = np.zeros(512, dtype=np.uint8)
        scrambled = Scrambler().scramble_bits(data)
        assert scrambled.sum() > 0

    def test_scramble_rejects_non_binary(self):
        with pytest.raises(ValueError):
            Scrambler().scramble_bits(np.array([0, 1, 2]))

    def test_scramble_levels_roundtrip(self):
        rng = np.random.default_rng(1)
        levels = rng.integers(0, NUM_LEVELS, size=(16, 16))
        scrambler = Scrambler(seed=0x1357)
        recovered = scrambler.descramble_levels(
            scrambler.scramble_levels(levels))
        np.testing.assert_array_equal(recovered, levels)

    def test_constant_payload_becomes_balanced(self):
        """The whole point of a randomiser: all-zero data uses all levels."""
        levels = np.zeros((64, 64), dtype=int)
        balance = Scrambler(seed=0x2468).level_balance(levels)
        assert np.count_nonzero(balance) == NUM_LEVELS
        assert balance.max() < 0.3

    def test_level_balance_sums_to_one(self):
        levels = np.zeros((32, 32), dtype=int)
        balance = Scrambler().level_balance(levels)
        assert balance.sum() == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=2 ** 16 - 1))
    def test_roundtrip_for_any_seed(self, seed):
        data = np.arange(96) % 2
        scrambler = Scrambler(seed=seed)
        np.testing.assert_array_equal(
            scrambler.descramble_bits(scrambler.scramble_bits(data)), data)


def _small_sweep(seed: int = 0) -> EnduranceSweep:
    channel = FlashChannel(geometry=BlockGeometry(32, 32),
                           rng=np.random.default_rng(seed))
    return EnduranceSweep(channel=channel,
                          pe_points=(1000, 4000, 7000, 10000),
                          blocks_per_point=2)


class TestEnduranceSweep:
    def test_run_returns_one_point_per_pe(self):
        points = _small_sweep().run()
        assert [point.pe_cycles for point in points] == [1000, 4000, 7000, 10000]

    def test_error_rate_grows_with_cycling(self):
        points = _small_sweep(seed=3).run()
        rates = [point.level_error_rate for point in points]
        assert rates[-1] > rates[0]

    def test_worst_page_rber_bounds_the_mean(self):
        for point in _small_sweep(seed=5).run():
            if point.page_rber:
                assert point.worst_page_rber >= np.mean(list(point.page_rber.values()))

    def test_validation(self):
        with pytest.raises(ValueError):
            EnduranceSweep(pe_points=())
        with pytest.raises(ValueError):
            EnduranceSweep(pe_points=(-1, 10))
        with pytest.raises(ValueError):
            EnduranceSweep(pe_points=(10, 5))
        with pytest.raises(ValueError):
            EnduranceSweep(blocks_per_point=0)


class TestEstimateEnduranceLimit:
    @staticmethod
    def _points(rates):
        return [EndurancePoint(pe_cycles=pe, level_error_rate=rate,
                               page_rber={"lower": rate})
                for pe, rate in rates]

    def test_interpolates_the_crossing(self):
        points = self._points([(1000, 0.001), (2000, 0.003)])
        limit = estimate_endurance_limit(points, rber_target=0.002)
        assert limit == pytest.approx(1500.0)

    def test_returns_none_when_never_exceeded(self):
        points = self._points([(1000, 0.001), (2000, 0.0015)])
        assert estimate_endurance_limit(points, rber_target=0.01) is None

    def test_returns_zero_when_already_exceeded(self):
        points = self._points([(1000, 0.05)])
        assert estimate_endurance_limit(points, rber_target=0.01) == 0.0

    def test_flat_curve_returns_the_crossing_point(self):
        points = self._points([(1000, 0.002), (2000, 0.002)])
        assert estimate_endurance_limit(points, rber_target=0.002) == 0.0

    def test_stricter_target_gives_shorter_life(self):
        points = self._points([(1000, 0.001), (5000, 0.003), (10000, 0.008)])
        strict = estimate_endurance_limit(points, rber_target=0.002)
        lenient = estimate_endurance_limit(points, rber_target=0.006)
        assert strict < lenient

    def test_level_error_rate_metric_selectable(self):
        points = [EndurancePoint(pe_cycles=1000, level_error_rate=0.01,
                                 page_rber={"lower": 0.001})]
        by_page = estimate_endurance_limit(points, rber_target=0.005,
                                           use_worst_page=True)
        by_level = estimate_endurance_limit(points, rber_target=0.005,
                                            use_worst_page=False)
        assert by_page is None
        assert by_level == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_endurance_limit([], rber_target=0.01)
        with pytest.raises(ValueError):
            estimate_endurance_limit(self._points([(1, 0.1)]), rber_target=0.0)

    def test_sweep_to_limit_end_to_end(self):
        points = _small_sweep(seed=7).run()
        limit = estimate_endurance_limit(points, rber_target=0.02,
                                         use_worst_page=False)
        # With the default simulator parameters the channel stays well below
        # 2% level error rate over the swept range.
        assert limit is None or limit > 0
