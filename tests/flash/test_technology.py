"""Tests for the multi-level cell technology abstraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    MLC,
    QLC,
    SLC,
    TLC,
    CellTechnology,
    MultiLevelCellChannel,
    reflected_gray_code,
)
from repro.flash.technology import gray_bits_to_level, gray_level_to_bits


class TestReflectedGrayCode:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 5])
    def test_adjacent_codewords_differ_in_one_bit(self, bits):
        code = reflected_gray_code(bits)
        for first, second in zip(code, code[1:]):
            assert bin(first ^ second).count("1") == 1

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_codewords_are_a_permutation(self, bits):
        code = reflected_gray_code(bits)
        assert sorted(code) == list(range(2 ** bits))

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            reflected_gray_code(0)

    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(min_value=1, max_value=6),
           level=st.integers(min_value=0, max_value=63))
    def test_level_bits_roundtrip(self, bits, level):
        level = level % (2 ** bits)
        assert gray_bits_to_level(gray_level_to_bits(level, bits)) == level

    def test_level_to_bits_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gray_level_to_bits(8, 3)

    def test_bits_to_level_rejects_non_binary(self):
        with pytest.raises(ValueError):
            gray_bits_to_level((0, 2, 1))


class TestCellTechnology:
    def test_standard_technologies(self):
        assert SLC.num_levels == 2
        assert MLC.num_levels == 4
        assert TLC.num_levels == 8
        assert QLC.num_levels == 16

    def test_level_means_are_increasing(self):
        for technology in (SLC, MLC, TLC, QLC):
            means = technology.level_means()
            assert np.all(np.diff(means) > 0)

    def test_level_means_span_the_window(self):
        means = QLC.level_means()
        assert means[0] == pytest.approx(QLC.erased_mean)
        assert means[-1] == pytest.approx(QLC.erased_mean + QLC.voltage_window)

    def test_higher_density_means_tighter_spacing(self):
        slc_gap = np.diff(SLC.level_means()).min()
        qlc_gap = np.diff(QLC.level_means()).min()
        assert qlc_gap < slc_gap

    def test_thresholds_between_means(self):
        thresholds = TLC.read_thresholds()
        means = TLC.level_means()
        assert thresholds.shape == (7,)
        assert np.all(thresholds > means[:-1])
        assert np.all(thresholds < means[1:])

    def test_gray_map_has_one_entry_per_level(self):
        gray_map = QLC.gray_map()
        assert len(gray_map) == 16
        assert all(len(bits) == 4 for bits in gray_map.values())

    def test_gray_map_adjacent_levels_differ_in_one_bit(self):
        gray_map = TLC.gray_map()
        for level in range(7):
            differences = sum(a != b for a, b in zip(gray_map[level],
                                                     gray_map[level + 1]))
            assert differences == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CellTechnology("bad", 0)
        with pytest.raises(ValueError):
            CellTechnology("bad", 2, voltage_window=-1.0)
        with pytest.raises(ValueError):
            CellTechnology("bad", 2, sigma=0.0)
        with pytest.raises(ValueError):
            CellTechnology("bad", 2, reference_pe_cycles=0.0)


class TestMultiLevelCellChannel:
    def test_read_shape_matches_input(self):
        channel = MultiLevelCellChannel(TLC, rng=np.random.default_rng(0))
        levels = np.random.default_rng(1).integers(0, 8, size=(16, 16))
        assert channel.read(levels, 4000).shape == levels.shape

    def test_read_rejects_out_of_range_levels(self):
        channel = MultiLevelCellChannel(MLC, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            channel.read(np.array([[4]]), 1000)

    def test_sigma_grows_with_wear(self):
        channel = MultiLevelCellChannel(TLC)
        assert channel.sigma_at(10000) > channel.sigma_at(0)

    def test_sigma_rejects_negative_cycles(self):
        channel = MultiLevelCellChannel(TLC)
        with pytest.raises(ValueError):
            channel.sigma_at(-1)

    def test_hard_read_recovers_clean_levels(self):
        channel = MultiLevelCellChannel(TLC)
        levels = np.arange(8)
        voltages = TLC.level_means()[levels]
        np.testing.assert_array_equal(channel.hard_read(voltages), levels)

    def test_error_rate_increases_with_bit_density(self):
        """The classic SLC < MLC < TLC < QLC reliability ordering."""
        rates = []
        for technology in (SLC, MLC, TLC, QLC):
            channel = MultiLevelCellChannel(technology,
                                            rng=np.random.default_rng(42))
            rates.append(channel.level_error_rate(8000, num_cells=40000))
        assert rates == sorted(rates)
        assert rates[0] < rates[-1]

    def test_error_rate_increases_with_wear(self):
        channel = MultiLevelCellChannel(QLC, rng=np.random.default_rng(5))
        young = channel.level_error_rate(0, num_cells=40000,
                                         rng=np.random.default_rng(6))
        old = channel.level_error_rate(10000, num_cells=40000,
                                       rng=np.random.default_rng(6))
        assert old > young

    def test_error_rate_rejects_empty_sample(self):
        channel = MultiLevelCellChannel(TLC)
        with pytest.raises(ValueError):
            channel.level_error_rate(1000, num_cells=0)

    def test_analytic_rate_matches_monte_carlo(self):
        channel = MultiLevelCellChannel(QLC, rng=np.random.default_rng(9))
        analytic = channel.analytic_level_error_rate(10000)
        empirical = channel.level_error_rate(10000, num_cells=200000)
        assert empirical == pytest.approx(analytic, rel=0.15)

    def test_analytic_rate_ordering_across_technologies(self):
        rates = [MultiLevelCellChannel(t).analytic_level_error_rate(10000)
                 for t in (SLC, MLC, TLC, QLC)]
        assert rates == sorted(rates)
