"""Tests for read thresholds, hard reads and error statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import (
    FlashParameters,
    default_read_thresholds,
    hard_read,
    level_error_rate,
    per_level_error_counts,
    per_level_error_rates,
    read_threshold_between,
)
from repro.flash.cell import NUM_LEVELS


class TestThresholds:
    def test_seven_thresholds(self, params):
        assert default_read_thresholds(params).shape == (7,)

    def test_thresholds_between_level_means(self, params):
        thresholds = default_read_thresholds(params)
        means = params.means_array
        assert np.all(thresholds > means[:-1])
        assert np.all(thresholds < means[1:])

    def test_thresholds_increasing(self, params):
        assert np.all(np.diff(default_read_thresholds(params)) > 0)

    def test_read_threshold_between_adjacent(self, params):
        thresholds = default_read_thresholds(params)
        assert read_threshold_between(0, 1, params) == pytest.approx(thresholds[0])
        assert read_threshold_between(6, 7, params) == pytest.approx(thresholds[6])

    def test_read_threshold_between_rejects_non_adjacent(self, params):
        with pytest.raises(ValueError):
            read_threshold_between(0, 2, params)
        with pytest.raises(ValueError):
            read_threshold_between(7, 8, params)

    def test_hard_read_at_level_means_is_exact(self, params):
        voltages = params.means_array
        np.testing.assert_array_equal(hard_read(voltages, params=params),
                                      np.arange(NUM_LEVELS))

    def test_hard_read_extreme_voltages(self, params):
        assert hard_read(np.array([-100.0]), params=params)[0] == 0
        assert hard_read(np.array([1000.0]), params=params)[0] == 7

    def test_hard_read_rejects_wrong_threshold_count(self):
        with pytest.raises(ValueError):
            hard_read(np.array([1.0]), thresholds=np.array([1.0, 2.0]))

    def test_hard_read_rejects_unsorted_thresholds(self):
        thresholds = default_read_thresholds()
        bad = thresholds.copy()
        bad[3] = bad[2] - 1
        with pytest.raises(ValueError):
            hard_read(np.array([1.0]), thresholds=bad)

    @given(st.floats(min_value=0.0, max_value=650.0))
    @settings(max_examples=100, deadline=None)
    def test_hard_read_level_is_valid(self, voltage):
        level = hard_read(np.array([voltage]))[0]
        assert 0 <= level < NUM_LEVELS

    @given(st.floats(0.0, 640.0), st.floats(0.1, 10.0))
    @settings(max_examples=60, deadline=None)
    def test_hard_read_monotone_in_voltage(self, voltage, delta):
        low, high = hard_read(np.array([voltage, voltage + delta]))
        assert high >= low


class TestErrorStatistics:
    def test_no_errors_for_noiseless_voltages(self, params):
        levels = np.tile(np.arange(NUM_LEVELS), (8, 1))
        voltages = params.means_array[levels]
        assert level_error_rate(levels, voltages, params=params) == 0.0

    def test_all_errors_for_shifted_voltages(self, params):
        levels = np.full((4, 4), 2)
        voltages = np.full((4, 4), params.means_array[5])
        assert level_error_rate(levels, voltages, params=params) == 1.0

    def test_error_rate_between_zero_and_one(self, channel):
        program, voltages = channel.paired_blocks(2, 7000)
        rate = level_error_rate(program, voltages)
        assert 0.0 <= rate <= 1.0

    def test_per_level_counts_sum_matches_total(self, channel):
        program, voltages = channel.paired_blocks(2, 10000)
        counts = per_level_error_counts(program, voltages)
        total = level_error_rate(program, voltages) * program.size
        assert counts.sum() == pytest.approx(total)

    def test_per_level_counts_shape(self, channel):
        program, voltages = channel.paired_blocks(1, 4000)
        assert per_level_error_counts(program, voltages).shape == (NUM_LEVELS,)

    def test_per_level_rates_bounded(self, channel):
        program, voltages = channel.paired_blocks(1, 10000)
        rates = per_level_error_rates(program, voltages)
        assert np.all(rates >= 0.0) and np.all(rates <= 1.0)

    def test_per_level_rates_zero_for_missing_level(self, params):
        levels = np.full((4, 4), 3)
        voltages = params.means_array[levels]
        rates = per_level_error_rates(levels, voltages, params=params)
        assert rates[5] == 0.0

    def test_mismatched_shapes_rejected(self, params):
        with pytest.raises(ValueError):
            level_error_rate(np.zeros((2, 2), dtype=int), np.zeros((3, 3)))

    def test_empty_input_rejected(self, params):
        with pytest.raises(ValueError):
            level_error_rate(np.zeros((0,), dtype=int), np.zeros((0,)))


class TestPaperFacts:
    """Quantitative facts from the paper the simulator must reproduce."""

    @pytest.fixture(scope="class")
    def cycling_counts(self):
        from repro.flash import FlashChannel
        channel = FlashChannel(rng=np.random.default_rng(99))
        counts = {}
        rates = {}
        for pe_cycles in (4000, 7000, 10000):
            program, voltages = channel.paired_blocks(60, pe_cycles)
            counts[pe_cycles] = per_level_error_counts(program, voltages)
            rates[pe_cycles] = level_error_rate(program, voltages)
        return counts, rates

    def test_error_rate_increases_with_cycling(self, cycling_counts):
        _, rates = cycling_counts
        assert rates[4000] < rates[7000] < rates[10000]

    def test_error_rate_in_paper_band(self, cycling_counts):
        """Fig. 2 reports level error rates between 1e-3 and ~1e-2."""
        _, rates = cycling_counts
        assert 5e-4 < rates[4000] < 2e-2
        assert 5e-4 < rates[10000] < 3e-2

    def test_total_error_growth_factor(self, cycling_counts):
        """Fig. 5: errors at 10000 cycles are ~2.5x those at 4000 cycles."""
        counts, _ = cycling_counts
        ratio = counts[10000][1:].sum() / counts[4000][1:].sum()
        assert 1.8 < ratio < 3.5

    def test_level_one_has_highest_error_count(self, cycling_counts):
        """Fig. 5: program level 1 contributes the most errors."""
        counts, _ = cycling_counts
        programmed = counts[7000][1:]
        assert programmed.argmax() == 0  # index 0 of levels 1..7 is level 1
