"""Tests for the wear model, ICI model and voltage sampler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashParameters, ICIModel, VoltageSampler, WearModel
from repro.flash.cell import ERASED_LEVEL, NUM_LEVELS


class TestWearModel:
    def test_means_at_zero_cycles_equal_nominal(self, params):
        wear = WearModel(params)
        np.testing.assert_allclose(wear.level_means(0), params.means_array)

    def test_erased_level_drifts_up(self, params):
        wear = WearModel(params)
        assert wear.level_means(10000)[ERASED_LEVEL] > \
            wear.level_means(0)[ERASED_LEVEL]

    def test_programmed_levels_drift_down(self, params):
        wear = WearModel(params)
        fresh = wear.level_means(0)
        worn = wear.level_means(10000)
        assert np.all(worn[1:] <= fresh[1:])

    def test_drift_proportional_to_level(self, params):
        wear = WearModel(params)
        drift = wear.level_means(0) - wear.level_means(10000)
        assert drift[7] > drift[1] > 0

    def test_sigmas_grow_with_cycling(self, params):
        wear = WearModel(params)
        assert np.all(wear.level_sigmas(10000) > wear.level_sigmas(0))

    def test_sigma_growth_monotone(self, params):
        wear = WearModel(params)
        sigma_values = [wear.level_sigmas(pe)[1] for pe in (0, 4000, 7000, 10000)]
        assert sigma_values == sorted(sigma_values)

    def test_tail_probability_grows_and_is_bounded(self, params):
        wear = WearModel(params)
        probabilities = [wear.tail_probability(pe) for pe in (0, 4000, 10000)]
        assert probabilities == sorted(probabilities)
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    def test_tail_scale_is_multiple_of_sigma(self, params):
        wear = WearModel(params)
        np.testing.assert_allclose(
            wear.tail_scales(7000),
            wear.level_sigmas(7000) * params.tail_scale_multiplier)

    def test_describe_contains_all_keys(self, params):
        description = WearModel(params).describe(4000)
        assert set(description) == {"pe_cycles", "means", "sigmas",
                                    "tail_probability", "tail_scales"}

    def test_level_ordering_preserved_under_wear(self, params):
        """Wear must never reorder the level means."""
        wear = WearModel(params)
        for pe in (0, 4000, 7000, 10000, 20000):
            assert np.all(np.diff(wear.level_means(pe)) > 0)


class TestICIModel:
    def test_no_interference_for_all_erased_block(self, params):
        ici = ICIModel(params)
        shifts = ici.shifts(np.zeros((8, 8), dtype=int))
        np.testing.assert_allclose(shifts, 0.0)

    def test_shift_is_nonnegative(self, params, rng):
        ici = ICIModel(params)
        levels = rng.integers(0, NUM_LEVELS, size=(16, 16))
        assert np.all(ici.shifts(levels) >= 0)

    def test_high_low_high_victim_receives_large_shift(self, params):
        """A 707 bitline pattern shifts the central erased cell."""
        ici = ICIModel(params)
        levels = np.zeros((3, 3), dtype=int)
        levels[0, 1] = 7
        levels[2, 1] = 7
        shifts = ici.shifts(levels)
        swing = params.means_array[7] - params.means_array[0]
        assert shifts[1, 1] == pytest.approx(2 * params.bl_coupling * swing)

    def test_bitline_shift_exceeds_wordline_shift(self, params):
        ici = ICIModel(params)
        bl_pattern = np.zeros((3, 3), dtype=int)
        bl_pattern[0, 1] = bl_pattern[2, 1] = 7
        wl_pattern = np.zeros((3, 3), dtype=int)
        wl_pattern[1, 0] = wl_pattern[1, 2] = 7
        assert ici.shifts(bl_pattern)[1, 1] > ici.shifts(wl_pattern)[1, 1]

    def test_programmed_victim_attenuated(self, params):
        ici = ICIModel(params)
        levels = np.zeros((3, 3), dtype=int)
        levels[0, 1] = levels[2, 1] = 7
        erased_shift = ici.shifts(levels)[1, 1]
        levels[1, 1] = 3
        programmed_shift = ici.shifts(levels)[1, 1]
        assert programmed_shift == pytest.approx(
            erased_shift * params.ici_program_attenuation)

    def test_boundary_cells_have_fewer_aggressors(self, params):
        ici = ICIModel(params)
        levels = np.full((3, 3), 7, dtype=int)
        levels[1, 1] = 0
        corner_levels = np.full((3, 3), 7, dtype=int)
        corner_levels[0, 0] = 0
        interior = ici.shifts(levels)[1, 1]
        corner = ici.shifts(corner_levels)[0, 0]
        assert corner < interior

    def test_batched_blocks_match_single_blocks(self, params, rng):
        ici = ICIModel(params)
        blocks = rng.integers(0, NUM_LEVELS, size=(4, 8, 8))
        batched = ici.shifts(blocks)
        for index in range(4):
            np.testing.assert_allclose(batched[index], ici.shifts(blocks[index]))

    def test_rejects_one_dimensional_input(self, params):
        with pytest.raises(ValueError):
            ICIModel(params).shifts(np.zeros(8, dtype=int))

    def test_worst_case_shift_formula(self, params):
        ici = ICIModel(params)
        swing = params.means_array[7] - params.means_array[0]
        expected = 2 * swing * (params.wl_coupling + params.bl_coupling)
        assert ici.worst_case_shift() == pytest.approx(expected)

    def test_neighbour_swing_zero_for_erased(self, params):
        ici = ICIModel(params)
        swings = ici.neighbour_swing(np.arange(NUM_LEVELS))
        assert swings[ERASED_LEVEL] == 0.0
        assert np.all(np.diff(swings) > 0)


class TestVoltageSampler:
    def test_sample_shape_matches_input(self, params, rng):
        sampler = VoltageSampler(params, rng)
        levels = rng.integers(0, NUM_LEVELS, size=(5, 6))
        assert sampler.sample(levels, 4000).shape == (5, 6)

    def test_sample_within_voltage_range(self, params, rng):
        sampler = VoltageSampler(params, rng)
        levels = rng.integers(0, NUM_LEVELS, size=(64, 64))
        voltages = sampler.sample(levels, 10000)
        assert voltages.min() >= params.voltage_min
        assert voltages.max() <= params.voltage_max

    def test_levels_are_separated_on_average(self, params, rng):
        sampler = VoltageSampler(params, rng)
        levels = np.repeat(np.arange(NUM_LEVELS), 2000).reshape(NUM_LEVELS, -1)
        voltages = sampler.sample(levels, 4000)
        means = voltages.mean(axis=1)
        assert np.all(np.diff(means) > 30)

    def test_higher_pe_gives_wider_distributions(self, params):
        rng = np.random.default_rng(0)
        sampler = VoltageSampler(params, rng)
        levels = np.full((200, 200), 4)
        fresh = sampler.sample(levels, 0)
        worn = sampler.sample(levels, 10000)
        assert worn.std() > fresh.std()

    def test_ici_shift_added(self, params):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        levels = np.full((4, 4), ERASED_LEVEL)
        plain = VoltageSampler(params, rng_a).sample(levels, 4000)
        shifted = VoltageSampler(params, rng_b).sample(
            levels, 4000, ici_shifts=np.full((4, 4), 10.0))
        np.testing.assert_allclose(shifted - plain, 10.0, atol=1e-9)

    def test_deterministic_with_seeded_rng(self, params):
        levels = np.full((8, 8), 3)
        first = VoltageSampler(params, np.random.default_rng(11)).sample(levels, 7000)
        second = VoltageSampler(params, np.random.default_rng(11)).sample(levels, 7000)
        np.testing.assert_allclose(first, second)

    def test_programmed_levels_have_heavier_tails_when_worn(self, params):
        """Excess kurtosis of programmed levels grows with P/E cycles."""
        rng = np.random.default_rng(3)
        sampler = VoltageSampler(params, rng)
        levels = np.full((300, 300), 4)
        fresh = sampler.sample(levels, 0)
        worn = sampler.sample(levels, 10000)

        def excess_kurtosis(values):
            centred = values - values.mean()
            return float(np.mean(centred ** 4) / np.mean(centred ** 2) ** 2 - 3)

        assert excess_kurtosis(worn) > excess_kurtosis(fresh)

    @given(st.integers(0, NUM_LEVELS - 1), st.sampled_from([0, 4000, 7000, 10000]))
    @settings(max_examples=20, deadline=None)
    def test_sample_mean_close_to_wear_mean(self, level, pe_cycles):
        params = FlashParameters()
        sampler = VoltageSampler(params, np.random.default_rng(level * 13 + 1))
        levels = np.full((100, 100), level)
        voltages = sampler.sample(levels, pe_cycles)
        expected = WearModel(params).level_means(pe_cycles)[level]
        assert abs(voltages.mean() - expected) < 2.0
