"""Tests for the chip-level wear-levelling simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import BlockGeometry, FlashChannel
from repro.flash.wear_leveling import (
    ChipWearState,
    POLICIES,
    simulate_wear_leveling,
)


class TestSimulateWearLeveling:
    def test_total_erases_equals_number_of_writes(self):
        state = simulate_wear_leveling(16, 1000, policy="round_robin")
        assert state.total_erases == 1000
        assert state.num_blocks == 16

    def test_round_robin_is_perfectly_balanced(self):
        state = simulate_wear_leveling(10, 1000, policy="round_robin")
        assert state.wear_imbalance == pytest.approx(1.0)
        assert state.max_erase_count == 100

    def test_greedy_min_wear_is_balanced_within_one(self):
        state = simulate_wear_leveling(7, 997, policy="greedy_min_wear")
        assert state.erase_counts.max() - state.erase_counts.min() <= 1

    def test_greedy_levels_out_pre_existing_wear(self):
        initial = np.array([500, 0, 0, 0], dtype=np.int64)
        state = simulate_wear_leveling(4, 300, policy="greedy_min_wear",
                                       initial_erase_counts=initial)
        # The worn block receives no further erases until the others catch up.
        assert state.erase_counts[0] == 500
        assert state.erase_counts[1:].max() <= 500

    def test_hot_block_concentrates_wear(self):
        rng = np.random.default_rng(0)
        state = simulate_wear_leveling(20, 2000, policy="hot_block",
                                       hot_fraction=0.1, rng=rng)
        assert state.wear_imbalance > 5.0
        assert state.max_erase_count > 2000 / 20

    def test_hot_block_worse_than_levelled(self):
        rng = np.random.default_rng(1)
        hot = simulate_wear_leveling(20, 5000, policy="hot_block",
                                     hot_fraction=0.1, rng=rng)
        levelled = simulate_wear_leveling(20, 5000, policy="greedy_min_wear")
        assert hot.max_erase_count > levelled.max_erase_count

    def test_zero_writes_leaves_a_fresh_chip(self):
        state = simulate_wear_leveling(8, 0)
        assert state.total_erases == 0
        assert state.wear_imbalance == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_wear_leveling(0, 10)
        with pytest.raises(ValueError):
            simulate_wear_leveling(4, -1)
        with pytest.raises(ValueError):
            simulate_wear_leveling(4, 10, policy="bogus")
        with pytest.raises(ValueError):
            simulate_wear_leveling(4, 10, policy="hot_block", hot_fraction=0.0)
        with pytest.raises(ValueError):
            simulate_wear_leveling(4, 10,
                                   initial_erase_counts=np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            simulate_wear_leveling(2, 10,
                                   initial_erase_counts=np.array([-1, 0]))

    @settings(max_examples=25, deadline=None)
    @given(num_blocks=st.integers(min_value=1, max_value=32),
           num_writes=st.integers(min_value=0, max_value=500),
           policy=st.sampled_from(POLICIES))
    def test_erase_counts_always_account_for_every_write(self, num_blocks,
                                                         num_writes, policy):
        state = simulate_wear_leveling(num_blocks, num_writes, policy=policy,
                                       rng=np.random.default_rng(0))
        assert state.total_erases == num_writes
        assert np.all(state.erase_counts >= 0)

    @settings(max_examples=15, deadline=None)
    @given(num_writes=st.integers(min_value=0, max_value=400))
    def test_greedy_never_worse_than_hot_block(self, num_writes):
        greedy = simulate_wear_leveling(8, num_writes, policy="greedy_min_wear")
        hot = simulate_wear_leveling(8, num_writes, policy="hot_block",
                                     hot_fraction=0.25,
                                     rng=np.random.default_rng(0))
        assert greedy.max_erase_count <= hot.max_erase_count


class TestChipWearStateWithChannel:
    def test_worst_block_error_rate_tracks_imbalance(self):
        """The hot-block chip's worst block reads back with more errors."""
        channel = FlashChannel(geometry=BlockGeometry(32, 32),
                               rng=np.random.default_rng(2))
        levelled = simulate_wear_leveling(16, 80000, policy="greedy_min_wear")
        hot = simulate_wear_leveling(16, 80000, policy="hot_block",
                                     hot_fraction=0.1,
                                     rng=np.random.default_rng(3))
        levelled_rate = levelled.worst_block_error_rate(channel, num_blocks=3)
        hot_rate = hot.worst_block_error_rate(channel, num_blocks=3)
        assert hot.max_erase_count > levelled.max_erase_count
        assert hot_rate > levelled_rate

    def test_wear_imbalance_of_fresh_chip_is_one(self):
        state = ChipWearState(erase_counts=np.zeros(4, dtype=np.int64),
                              policy="round_robin")
        assert state.wear_imbalance == 1.0
