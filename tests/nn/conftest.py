"""Shared fixtures and helpers for the NN framework tests."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function.

    ``func`` must be a zero-argument callable returning a float and reading
    ``array`` by reference so in-place perturbations are observed.
    """
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad
