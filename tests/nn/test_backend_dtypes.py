"""Tests for the precision policy and the swappable array-kernel backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    bce_with_logits_loss,
    default_dtype,
    gaussian_kl_loss,
    get_backend,
    get_default_dtype,
    mse_loss,
    no_grad,
    resolve_dtype,
    set_backend,
    set_default_dtype,
    use_backend,
)
from repro.nn import functional as F
from repro.nn.backend import (
    BACKEND_REGISTRY,
    ArrayBackend,
    BufferArena,
    NumpyBackend,
    ReferenceBackend,
    build_backend,
    register_backend,
)
from repro.nn.cjit import cjit_available

needs_compiler = pytest.mark.skipif(
    not cjit_available(), reason="no C compiler (cc/clang/gcc) on PATH")

#: Backends held to the reference kernels: numpy always, cjit when a
#: compiler exists (without one it degenerates to the numpy kernels).
CONFORMANCE_BACKENDS = ["numpy",
                        pytest.param("cjit", marks=needs_compiler)]


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_resolve_aliases(self):
        assert resolve_dtype("f32") == np.float32
        assert resolve_dtype("float64") == np.float64
        assert resolve_dtype(np.float32) == np.float32

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            resolve_dtype(np.int32)

    def test_context_manager_scopes_and_restores(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_set_default_dtype(self):
        try:
            set_default_dtype("float32")
            assert get_default_dtype() == np.float32
        finally:
            set_default_dtype("float64")

    def test_tensor_creation_follows_default(self):
        with default_dtype("float32"):
            assert Tensor([1, 2, 3]).dtype == np.float32      # ints promoted
            assert Tensor(2.5).dtype == np.float32            # python float
            assert Tensor.zeros((2,)).dtype == np.float32
            assert Tensor.ones((2,)).dtype == np.float32
            assert Tensor.randn(3, rng=np.random.default_rng(0)).dtype \
                == np.float32

    def test_explicit_ndarray_keeps_its_dtype(self):
        with default_dtype("float32"):
            assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32

    def test_explicit_dtype_argument_wins(self):
        assert Tensor([1.0], dtype=np.float32).dtype == np.float32

    def test_randn_same_stream_across_dtypes(self):
        """float32 draws are the cast of the float64 stream, not a new one."""
        a = Tensor.randn(16, rng=np.random.default_rng(3), dtype=np.float64)
        b = Tensor.randn(16, rng=np.random.default_rng(3), dtype=np.float32)
        np.testing.assert_array_equal(a.data.astype(np.float32), b.data)

    def test_astype_is_differentiable(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        (y * y).sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, [2.0, -4.0])

    def test_astype_same_dtype_is_identity(self):
        x = Tensor(np.array([1.0]))
        assert x.astype(np.float64) is x


class TestBackendRegistry:
    def test_default_backend_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_registry_contents(self):
        assert "numpy" in BACKEND_REGISTRY and "reference" in BACKEND_REGISTRY

    def test_build_unknown_backend(self):
        with pytest.raises(ValueError):
            build_backend("cuda")

    def test_use_backend_scopes_and_restores(self):
        with use_backend("reference") as backend:
            assert isinstance(backend, ReferenceBackend)
            assert get_backend() is backend
        assert get_backend().name == "numpy"

    def test_set_backend_accepts_instance(self):
        previous = get_backend()
        try:
            instance = NumpyBackend()
            assert set_backend(instance) is instance
            assert get_backend() is instance
        finally:
            set_backend(previous)

    def test_set_backend_rejects_junk(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_register_backend_decorator(self):
        @register_backend("_test_backend")
        class _TestBackend(NumpyBackend):
            name = "_test_backend"
        try:
            assert isinstance(build_backend("_test_backend"), _TestBackend)
        finally:
            del BACKEND_REGISTRY["_test_backend"]

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend("junk", int)


class TestBufferArena:
    def test_scratch_reuses_buffers(self):
        arena = BufferArena()
        first = arena.scratch((4, 5), np.float32)
        second = arena.scratch((4, 5), np.float32)
        assert first is second
        assert arena.stats()["hits"] == 1
        assert arena.stats()["misses"] == 1

    def test_scratch_distinguishes_dtype(self):
        arena = BufferArena()
        assert arena.scratch((3,), np.float32) is not \
            arena.scratch((3,), np.float64)

    def test_clear(self):
        arena = BufferArena()
        arena.scratch((2, 2), np.float64)
        arena.clear()
        assert arena.stats()["buffers"] == 0

    def test_conv_inference_hits_arena(self):
        """Graph-free conv forward passes reuse the im2col scratch buffer."""
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)) * 0.1)
        with use_backend(NumpyBackend()) as backend:
            with no_grad():
                first = F.conv2d(x, w, stride=1, padding=1)
                second = F.conv2d(x, w, stride=1, padding=1)
            assert backend.arena.stats()["hits"] >= 1
        np.testing.assert_array_equal(first.data, second.data)

    def test_grad_path_never_uses_arena(self):
        """When a backward closure captures the columns they must be fresh."""
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.1, requires_grad=True)
        with use_backend(NumpyBackend()) as backend:
            out = F.conv2d(x, w, stride=1, padding=1)
            (out * out).sum().backward()
            assert backend.arena.stats()["hits"] == 0
        assert w.grad is not None and x.grad is not None


class TestBackendConformance:
    """Every accelerated backend must match the plain reference kernels.

    The conv lowering is pure indexing plus the shared BLAS matmul, so the
    comparison is **bit-exact** for the numpy arena backend and for the
    compiled-kernel (cjit) backend alike.
    """

    @pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_conv2d_forward_backward(self, dtype, backend_name, cjit_backend):
        rng = np.random.default_rng(7)
        x_data = rng.standard_normal((2, 3, 9, 9)).astype(dtype)
        w_data = (rng.standard_normal((4, 3, 4, 4)) * 0.1).astype(dtype)
        b_data = rng.standard_normal(4).astype(dtype)
        under_test = cjit_backend if backend_name == "cjit" else backend_name
        results = {}
        for name in (under_test, "reference"):
            with use_backend(name):
                x = Tensor(x_data, requires_grad=True)
                w = Tensor(w_data, requires_grad=True)
                b = Tensor(b_data, requires_grad=True)
                out = F.conv2d(x, w, b, stride=2, padding=1)
                (out * out).sum().backward()
                results[name] = (out.data, x.grad, w.grad, b.grad)
        for got, want in zip(results[under_test], results["reference"]):
            np.testing.assert_array_equal(got, want)
            assert got.dtype == dtype

    @pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_conv_transpose2d_inference(self, dtype, backend_name,
                                        cjit_backend):
        rng = np.random.default_rng(8)
        x_data = rng.standard_normal((2, 4, 5, 5)).astype(dtype)
        w_data = (rng.standard_normal((4, 2, 4, 4)) * 0.1).astype(dtype)
        under_test = cjit_backend if backend_name == "cjit" else backend_name
        results = {}
        for name in (under_test, "reference"):
            with use_backend(name), no_grad():
                out = F.conv_transpose2d(Tensor(x_data), Tensor(w_data),
                                         stride=2, padding=1)
                results[name] = out.data.copy()
        np.testing.assert_array_equal(results[under_test],
                                      results["reference"])
        assert results[under_test].dtype == dtype


@needs_compiler
class TestCJitKernelConformance:
    """Compiled kernels vs the NumPy kernels, per the documented contract.

    Indexing kernels (im2col/col2im), the optimizer updates and
    ``leaky_relu`` must be **bit-identical**; the fused loss reductions
    accumulate in float64 sequentially instead of NumPy's pairwise order,
    so their scalars are held to documented tolerances instead.
    """

    GEOMETRIES = [(4, 2, 1), (4, 1, 1), (3, 1, 1), (2, 2, 0)]

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_im2col_col2im_bit_identical(self, dtype, geometry, cjit_backend):
        kernel, stride, padding = geometry
        rng = np.random.default_rng(11)
        x = rng.standard_normal((2, 3, 9, 11)).astype(dtype)
        reference = NumpyBackend()
        cols_ref = reference.im2col(x, kernel, stride, padding)
        cols_jit = cjit_backend.im2col(x, kernel, stride, padding)
        np.testing.assert_array_equal(cols_jit, cols_ref)
        assert cols_jit.dtype == dtype
        grad_ref = reference.col2im(cols_ref, x.shape, kernel, stride,
                                    padding)
        grad_jit = cjit_backend.col2im(cols_ref, x.shape, kernel, stride,
                                       padding)
        np.testing.assert_array_equal(grad_jit, grad_ref)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("momentum,weight_decay",
                             [(0.0, 0.0), (0.9, 0.0), (0.9, 0.01)])
    def test_sgd_update_bit_identical(self, dtype, momentum, weight_decay,
                                      cjit_backend):
        reference = NumpyBackend()
        states = {}
        for backend in (reference, cjit_backend):
            rng_local = np.random.default_rng(12)
            param = rng_local.standard_normal(257).astype(dtype)
            grad = rng_local.standard_normal(257).astype(dtype)
            velocity = np.zeros_like(param) if momentum else None
            for _ in range(3):
                backend.sgd_update(param, grad, velocity, lr=0.05,
                                   momentum=momentum,
                                   weight_decay=weight_decay)
            states[backend.name] = (param, velocity)
        np.testing.assert_array_equal(states["cjit"][0], states["numpy"][0])
        if momentum:
            np.testing.assert_array_equal(states["cjit"][1],
                                          states["numpy"][1])

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_adam_update_bit_identical(self, dtype, cjit_backend):
        reference = NumpyBackend()
        states = {}
        for backend in (reference, cjit_backend):
            rng_local = np.random.default_rng(13)
            param = rng_local.standard_normal(193).astype(dtype)
            grad = rng_local.standard_normal(193).astype(dtype)
            m = np.zeros_like(param)
            v = np.zeros_like(param)
            for step in range(1, 6):
                backend.adam_update(param, grad, m, v, lr=1e-3, beta1=0.9,
                                    beta2=0.999, eps=1e-8,
                                    bias_correction1=1 - 0.9 ** step,
                                    bias_correction2=1 - 0.999 ** step,
                                    weight_decay=0.01)
            states[backend.name] = (param, m, v)
        for got, want in zip(states["cjit"], states["numpy"]):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_leaky_relu_bit_identical_and_nan_propagating(self, dtype,
                                                          cjit_backend):
        x = np.array([-2.0, -0.0, 0.0, 3.5, np.nan, -np.inf],
                     dtype=dtype)
        got = cjit_backend.leaky_relu(x, 0.2)
        want = NumpyBackend().leaky_relu(x, 0.2)
        np.testing.assert_array_equal(got, want)
        assert np.isnan(got[4])

    #: Relative tolerance of the fused loss scalars vs the NumPy pairwise
    #: accumulation (see README "Compiled kernels (cjit)").
    LOSS_RTOL = {np.dtype(np.float64): 1e-12, np.dtype(np.float32): 1e-5}

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_fused_loss_reductions_within_tolerance(self, dtype,
                                                    cjit_backend):
        rng = np.random.default_rng(14)
        array = rng.standard_normal((8, 257)).astype(dtype)
        reference = NumpyBackend()
        rtol = self.LOSS_RTOL[np.dtype(dtype)]
        for op, args in (("sum_squares", (array,)),
                         ("mean_abs", (array,)),
                         ("bce_logits", (array, 1.0)),
                         ("bce_logits", (array, 0.0))):
            got = getattr(cjit_backend, op)(*args)
            want = getattr(reference, op)(*args)
            assert got == pytest.approx(want, rel=rtol), op
        mu = rng.standard_normal((8, 64)).astype(dtype)
        logvar = (rng.standard_normal((8, 64)) * 0.3).astype(dtype)
        assert cjit_backend.gaussian_kl(mu, logvar) == pytest.approx(
            reference.gaussian_kl(mu, logvar), rel=rtol)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_opt_in_c_matmul_matches_blas(self, dtype, cjit_backend):
        """The BLAS-free tiled matmul agrees with NumPy to float tolerance."""
        from repro.nn.cjit import CJitBackend

        backend = CJitBackend(cache_dir=cjit_backend.cache.directory,
                              c_matmul=True)
        rng = np.random.default_rng(15)
        rtol = self.LOSS_RTOL[np.dtype(dtype)]
        for a_shape, b_shape in (((5, 7), (7, 3)),
                                 ((2, 5, 7), (2, 7, 3)),
                                 ((2, 5, 7), (7, 3)),
                                 ((5, 7), (2, 7, 3))):
            a = rng.standard_normal(a_shape).astype(dtype)
            b = rng.standard_normal(b_shape).astype(dtype)
            got = backend.matmul(a, b)
            want = NumpyBackend().matmul(a, b)
            assert got.shape == want.shape
            np.testing.assert_allclose(got, want, rtol=rtol,
                                       atol=rtol)


class TestFusedReductions:
    def test_sum_squares_accumulates_in_float64(self):
        backend = get_backend()
        array = np.full(10_000, 1e-4, dtype=np.float32)
        exact = 10_000 * 1e-8
        assert backend.sum_squares(array) == pytest.approx(exact, rel=1e-5)

    def test_fused_mse_matches_composition(self):
        rng = np.random.default_rng(2)
        pred_data = rng.standard_normal((4, 8))
        target = Tensor(rng.standard_normal((4, 8)))
        pred = Tensor(pred_data, requires_grad=True)
        loss = mse_loss(pred, target)
        loss.backward()
        diff = pred_data - target.data
        assert loss.item() == pytest.approx(float((diff ** 2).mean()))
        np.testing.assert_allclose(pred.grad, 2.0 * diff / diff.size,
                                   rtol=1e-12)

    def test_fused_mse_unbroadcasts_gradient(self):
        """A broadcast prediction gets its gradient reduced back."""
        pred = Tensor(np.ones((2, 1)), requires_grad=True)
        target = Tensor(np.zeros((2, 3)))
        mse_loss(pred, target).backward()
        assert pred.grad.shape == (2, 1)
        np.testing.assert_allclose(pred.grad,
                                   np.full((2, 1), 3 * 2.0 / 6))

    def test_fused_l1_unbroadcasts_gradient(self):
        from repro.nn import l1_loss
        pred = Tensor(np.ones((2, 1)), requires_grad=True)
        l1_loss(pred, Tensor(np.zeros((2, 3)))).backward()
        assert pred.grad.shape == (2, 1)

    def test_fused_bce_logits_gradient_is_sigmoid_minus_target(self):
        logits_data = np.array([-2.0, 0.0, 3.0])
        logits = Tensor(logits_data, requires_grad=True)
        bce_with_logits_loss(logits, 1.0).backward()
        expected = (1 / (1 + np.exp(-logits_data)) - 1.0) / logits_data.size
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-12)

    def test_fused_gaussian_kl_gradients(self):
        mu = Tensor(np.array([[0.5, -1.0]]), requires_grad=True)
        logvar = Tensor(np.array([[0.2, -0.4]]), requires_grad=True)
        gaussian_kl_loss(mu, logvar).backward()
        np.testing.assert_allclose(mu.grad, mu.data, rtol=1e-12)
        np.testing.assert_allclose(logvar.grad,
                                   0.5 * (np.exp(logvar.data) - 1.0),
                                   rtol=1e-12)

    def test_loss_value_is_float64_scalar(self):
        pred = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        loss = mse_loss(pred, Tensor(np.ones(4, dtype=np.float32)))
        assert loss.data.dtype == np.float64
        assert loss.data.shape == ()

    def test_custom_backend_is_actually_used(self):
        calls = []

        class _Spy(NumpyBackend):
            def matmul(self, a, b, out=None):
                calls.append(a.shape)
                return super().matmul(a, b, out=out)

        with use_backend(_Spy()):
            a = Tensor(np.ones((2, 3)))
            b = Tensor(np.ones((3, 2)))
            (a @ b).sum()
        assert calls


class TestAstypeIdentity:
    """Same-dtype casts are the identity on every path (no copy, no node)."""

    def test_same_dtype_cast_returns_self(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32))
        assert t.astype(np.float32) is t
        assert t.astype("float32") is t

    def test_same_dtype_cast_shares_memory(self):
        t = Tensor(np.ones((2, 3), dtype=np.float64))
        assert np.shares_memory(t.astype(np.float64).data, t.data)

    def test_cross_dtype_cast_still_copies(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = t.astype(np.float64)
        assert out is not t
        assert out.data.dtype == np.float64
        assert not np.shares_memory(out.data, t.data)


class TestFusedLoweringConformance:
    """The lazy realizer's backend lowerings vs the reference kernels.

    ``fused_elementwise`` and the segmented column writers are exactly the
    calls the lazy graph lowers through, so every accelerated backend must
    reproduce the reference backend's bits for them.
    """

    @pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_fused_elementwise_matches_reference(self, dtype, backend_name,
                                                 cjit_backend):
        rng = np.random.default_rng(21)
        x = rng.standard_normal((2, 4, 6, 6)).astype(dtype)
        bias = rng.standard_normal(4).astype(dtype)
        scale = rng.standard_normal(4).astype(dtype)
        shift = rng.standard_normal(4).astype(dtype)
        stages = [("bias_add", bias), ("affine", scale, shift),
                  ("leaky_relu", 0.2), ("neg",), ("add_scalar", 0.25),
                  ("div_scalar", 3.0), ("relu",), ("tanh",),
                  ("cast", np.float64)]
        under_test = cjit_backend if backend_name == "cjit" \
            else build_backend(backend_name)
        want = build_backend("reference").fused_elementwise(x.copy(), stages)
        got = under_test.fused_elementwise(x.copy(), stages)
        np.testing.assert_array_equal(got, want)
        assert got.dtype == np.float64  # the trailing cast propagates

    @pytest.mark.parametrize("backend_name", CONFORMANCE_BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_segmented_cols_match_reference(self, dtype, backend_name,
                                            cjit_backend):
        rng = np.random.default_rng(22)
        x = rng.standard_normal((2, 3, 8, 8)).astype(dtype)
        values = rng.standard_normal((2, 2)).astype(dtype)
        under_test = cjit_backend if backend_name == "cjit" \
            else build_backend(backend_name)
        reference = build_backend("reference")
        results = {}
        for backend in (under_test, reference):
            cols6 = np.zeros((2, 5, 4, 4, 4, 4), dtype=dtype)
            backend.im2col_into(x, cols6, 0, kernel=4, stride=2, padding=1)
            backend.expand_cols_into(values, cols6, 3, height=8, width=8,
                                     kernel=4, stride=2, padding=1)
            results[backend.name] = cols6
        np.testing.assert_array_equal(results[under_test.name],
                                      results[reference.name])
