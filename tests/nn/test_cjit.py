"""Tests for the compiled C-kernel backend (:mod:`repro.nn.cjit`).

The conformance battery (compiled kernels vs the NumPy kernels) lives in
``test_backend_dtypes.py`` next to the other backends; this file covers the
machinery itself — the renderer, compiler detection, the on-disk kernel
cache (hits skip the compiler, corrupted/stale objects recompile, poisoned
compiles surface a typed error), the no-compiler fallback, and the
``python -m repro.nn.backend`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.backend as backend_mod
from repro.artifacts.kernels import (
    KERNEL_CACHE_ENV,
    KERNEL_MANIFEST_FILENAME,
    KernelCache,
    default_kernel_cache_dir,
)
from repro.nn.backend import BACKEND_REGISTRY, NumpyBackend, use_backend
from repro.nn.cjit import (
    CJitBackend,
    KernelCompileError,
    cjit_available,
    find_compiler,
    kernel_cache_key,
    platform_tag,
    render_kernel,
    standard_kernel_specs,
)
from repro.nn.cjit import backend as cjit_backend_mod
from repro.nn.cjit.compiler import compile_source
from repro.nn.cjit.render import (
    SUPPORTED_DTYPES,
    conv_spec,
    elementwise_spec,
    reduce_spec,
    update_spec,
)

needs_compiler = pytest.mark.skipif(
    not cjit_available(), reason="no C compiler (cc/clang/gcc) on PATH")


class TestRenderer:
    def test_symbol_encodes_specialization(self):
        spec = conv_spec("im2col", "float32", 4, 2, 1)
        assert spec.symbol == "im2col_f32_k4_s2_p1"
        assert conv_spec("col2im", "float64", 3, 1, 1).symbol \
            == "col2im_f64_k3_s1_p1"

    def test_source_is_deterministic_and_contains_symbol(self):
        spec = reduce_spec("bce_logits", "float64")
        first = render_kernel(spec)
        assert render_kernel(spec) == first
        assert spec.symbol in first

    def test_window_constants_are_baked_in(self):
        source = render_kernel(conv_spec("im2col", "float32", 5, 3, 2))
        assert "k5" in conv_spec("im2col", "float32", 5, 3, 2).symbol
        # The geometry appears as literals, not runtime parameters.
        assert "* 3" in source or "3 *" in source

    def test_unknown_op_rejected(self):
        from repro.nn.cjit.render import KernelSpec
        with pytest.raises(ValueError, match="unknown kernel op"):
            render_kernel(KernelSpec(op="fft", dtype="float32"))

    def test_unsupported_dtype_rejected(self):
        from repro.nn.cjit.render import KernelSpec
        with pytest.raises(ValueError, match="dtype"):
            render_kernel(KernelSpec(op="im2col", dtype="float16"))

    def test_standard_set_covers_both_dtypes(self):
        specs = standard_kernel_specs()
        symbols = {spec.symbol for spec in specs}
        assert len(symbols) == len(specs)
        for dtype_suffix in ("f32", "f64"):
            assert any(f"im2col_{dtype_suffix}" in s for s in symbols)
            assert any(f"adam_update_{dtype_suffix}" in s for s in symbols)

    def test_cache_key_depends_on_every_component(self):
        base = kernel_cache_key("src", "cc-1", "linux-x86_64")
        assert kernel_cache_key("src2", "cc-1", "linux-x86_64") != base
        assert kernel_cache_key("src", "cc-2", "linux-x86_64") != base
        assert kernel_cache_key("src", "cc-1", "linux-arm64") != base


class TestKernelCacheStore:
    """Manifest + verification semantics, no compiler required."""

    def _fake_object(self, cache, key, payload=b"\x7fELF fake"):
        cache.directory.mkdir(parents=True, exist_ok=True)
        path = cache.object_path(key)
        path.write_bytes(payload)
        return path

    def test_lookup_on_fresh_cache_misses(self, tmp_path):
        cache = KernelCache(tmp_path)
        assert cache.lookup("deadbeef", source_sha256="s") is None
        assert cache.stats()["misses"] == 1

    def test_store_then_lookup_hits(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = self._fake_object(cache, "k1")
        cache.store("k1", path, source_sha256="s", symbol="sym",
                    compiler="cc-12", platform="linux-x86_64")
        assert cache.lookup("k1", source_sha256="s") == path
        assert cache.stats() == {"entries": 1, "bytes": path.stat().st_size,
                                 "hits": 1, "misses": 0}

    def test_stale_source_hash_evicts(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = self._fake_object(cache, "k1")
        cache.store("k1", path, source_sha256="old", symbol="sym",
                    compiler="cc", platform="p")
        assert cache.lookup("k1", source_sha256="new") is None
        assert not path.exists()
        assert cache.entries() == {}

    def test_corrupted_object_evicts(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = self._fake_object(cache, "k1")
        cache.store("k1", path, source_sha256="s", symbol="sym",
                    compiler="cc", platform="p")
        path.write_bytes(b"flipped bytes")
        assert cache.lookup("k1", source_sha256="s") is None
        assert cache.entries() == {}

    def test_missing_object_evicts(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = self._fake_object(cache, "k1")
        cache.store("k1", path, source_sha256="s", symbol="sym",
                    compiler="cc", platform="p")
        path.unlink()
        assert cache.lookup("k1", source_sha256="s") is None

    def test_damaged_manifest_is_an_empty_cache(self, tmp_path):
        cache = KernelCache(tmp_path)
        path = self._fake_object(cache, "k1")
        cache.store("k1", path, source_sha256="s", symbol="sym",
                    compiler="cc", platform="p")
        (tmp_path / KERNEL_MANIFEST_FILENAME).write_text("{not json")
        assert cache.entries() == {}
        assert cache.lookup("k1", source_sha256="s") is None

    def test_foreign_format_version_is_an_empty_cache(self, tmp_path):
        cache = KernelCache(tmp_path)
        (tmp_path).mkdir(exist_ok=True)
        (tmp_path / KERNEL_MANIFEST_FILENAME).write_text(
            '{"format_version": 999, "entries": {"k1": {}}}')
        assert cache.entries() == {}

    def test_default_directory_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path / "kc"))
        assert default_kernel_cache_dir() == tmp_path / "kc"
        monkeypatch.delenv(KERNEL_CACHE_ENV)
        assert default_kernel_cache_dir().name == ".repro-kernel-cache"


@needs_compiler
class TestCompileAndCache:
    def test_find_compiler_reports_version_tag(self):
        info = find_compiler()
        assert info is not None
        assert info.tag and " " not in info.tag
        assert platform_tag().startswith("linux") or platform_tag()

    def test_cache_hit_skips_the_compiler(self, tmp_path, monkeypatch):
        first = CJitBackend(cache_dir=tmp_path)
        x = np.linspace(-1, 1, 32, dtype=np.float32)
        first.leaky_relu(x, 0.2)
        assert first.compiled == 1

        def exploding_compile(*args, **kwargs):  # pragma: no cover
            raise AssertionError("cache hit must not invoke the compiler")

        monkeypatch.setattr(cjit_backend_mod, "compile_source",
                            exploding_compile)
        second = CJitBackend(cache_dir=tmp_path)
        got = second.leaky_relu(x, 0.2)
        np.testing.assert_array_equal(got, NumpyBackend().leaky_relu(x, 0.2))
        assert second.compiled == 0
        assert second.cache.hits == 1

    def test_corrupted_object_is_recompiled(self, tmp_path):
        first = CJitBackend(cache_dir=tmp_path)
        x = np.linspace(-1, 1, 16, dtype=np.float64)
        first.leaky_relu(x, 0.1)
        [key] = first.cache.entries()
        first.cache.object_path(key).write_bytes(b"not an object")
        second = CJitBackend(cache_dir=tmp_path)
        got = second.leaky_relu(x, 0.1)
        np.testing.assert_array_equal(got, NumpyBackend().leaky_relu(x, 0.1))
        assert second.compiled == 1  # recompiled, not loaded corrupt

    def test_stale_source_is_recompiled(self, tmp_path):
        backend = CJitBackend(cache_dir=tmp_path)
        x = np.ones(8, dtype=np.float32)
        backend.leaky_relu(x, 0.2)
        [key] = backend.cache.entries()
        entries = backend.cache.entries()
        entries[key]["source_sha256"] = "0" * 64
        backend.cache._write_entries(entries)
        second = CJitBackend(cache_dir=tmp_path)
        second.leaky_relu(x, 0.2)
        assert second.compiled == 1

    def test_poisoned_compile_raises_typed_error_with_stderr(self, tmp_path,
                                                             monkeypatch):
        monkeypatch.setattr(cjit_backend_mod, "render_kernel",
                            lambda spec: "this is not C;")
        backend = CJitBackend(cache_dir=tmp_path)
        with pytest.raises(KernelCompileError) as excinfo:
            backend.leaky_relu(np.ones(4, dtype=np.float32), 0.2)
        assert excinfo.value.stderr
        assert "error" in str(excinfo.value).lower()

    def test_compile_source_attaches_stderr(self, tmp_path):
        with pytest.raises(KernelCompileError) as excinfo:
            compile_source("int broken(void) { return }",
                           tmp_path / "broken.so", find_compiler())
        assert excinfo.value.stderr
        assert excinfo.value.source.startswith("int broken")

    def test_warm_compiles_standard_set_once(self, tmp_path):
        backend = CJitBackend(cache_dir=tmp_path)
        count = backend.warm(dtypes=("float32",))
        assert count == len(standard_kernel_specs(("float32",)))
        assert backend.compiled == count
        again = CJitBackend(cache_dir=tmp_path)
        assert again.warm(dtypes=("float32",)) == count
        assert again.compiled == 0


class TestFallback:
    def test_no_compiler_falls_back_to_numpy(self, tmp_path):
        backend = CJitBackend(cache_dir=tmp_path)
        backend.compiler = None  # simulate a host without cc/clang/gcc
        assert not backend.available()
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        cols = backend.im2col(x, 3, 1, 1)
        np.testing.assert_array_equal(cols,
                                      NumpyBackend().im2col(x, 3, 1, 1))
        assert backend.fallbacks >= 1
        assert backend.compiled == 0

    def test_no_compiler_warm_raises(self, tmp_path):
        backend = CJitBackend(cache_dir=tmp_path)
        backend.compiler = None
        with pytest.raises(RuntimeError, match="no C compiler"):
            backend.warm()

    def test_require_compiler_flag(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cjit_backend_mod, "find_compiler", lambda: None)
        with pytest.raises(RuntimeError, match="requires a C compiler"):
            CJitBackend(cache_dir=tmp_path, require_compiler=True)

    def test_unsupported_dtype_falls_back_per_op(self, cjit_backend):
        x = np.arange(12, dtype=np.int64).reshape(1, 3, 2, 2)
        before = cjit_backend.fallbacks
        cols = cjit_backend.im2col(x.astype(np.float16), 2, 1, 0)
        np.testing.assert_array_equal(
            cols, NumpyBackend().im2col(x.astype(np.float16), 2, 1, 0))
        assert cjit_backend.fallbacks == before + 1


class TestRegistryAndCLI:
    def test_cjit_is_registered(self):
        assert "cjit" in BACKEND_REGISTRY
        assert BACKEND_REGISTRY["cjit"] is CJitBackend

    def test_cli_lists_backends_and_compiler(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path))
        assert backend_mod.main([]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "reference" in out and "cjit" in out
        if cjit_available():
            assert "cjit compiler:" in out
        else:
            assert "none found" in out

    @needs_compiler
    def test_cli_warm_precompiles_then_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert backend_mod.main(["--warm", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "warmed" in first
        assert backend_mod.main(["--warm", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert "0 compiled" in second

    def test_cli_warm_without_compiler_fails(self, capsys, monkeypatch):
        import repro.nn.cjit as cjit_pkg
        monkeypatch.setattr(cjit_pkg, "find_compiler", lambda: None)
        assert backend_mod.main(["--warm"]) == 1
        assert "cannot --warm" in capsys.readouterr().out


@needs_compiler
class TestTrainStepParity:
    def test_tiny_training_run_is_bit_identical_to_numpy(self, cjit_backend):
        """Two full cVAE-GAN optimisation steps leave identical weights.

        The compiled path only replaces bit-identical kernels (conv
        lowering, optimizer updates) on the weight path — the loss scalars
        may differ in the last ulps, but every backward closure uses
        closed-form gradients, so the parameters must match exactly.
        """
        from repro.core import ModelConfig, Trainer, build_model
        from repro.data import generate_paired_dataset
        from repro.flash import BlockGeometry, FlashChannel

        simulator = FlashChannel(geometry=BlockGeometry(16, 16),
                                 rng=np.random.default_rng(5))
        dataset = generate_paired_dataset(simulator,
                                          pe_cycles=(4000.0, 10000.0),
                                          arrays_per_pe=8, array_size=8)
        weights = {}
        for name, backend in (("numpy", "numpy"), ("cjit", cjit_backend)):
            with use_backend(backend):
                config = ModelConfig.tiny()
                model = build_model("cvae_gan", config,
                                    rng=np.random.default_rng(21))
                trainer = Trainer(model, dataset,
                                  rng=np.random.default_rng(22))
                batch = dataset[0:4]
                for _ in range(2):
                    trainer.train_step(*batch)
                weights[name] = {key: value.copy() for key, value
                                 in model.state_dict().items()}
        assert weights["numpy"].keys() == weights["cjit"].keys()
        for key in weights["numpy"]:
            np.testing.assert_array_equal(weights["cjit"][key],
                                          weights["numpy"][key], err_msg=key)
