"""Dtype-propagation suite: float32 stays float32 through the whole stack.

Policy under test (see the README "Precision & backends" section):

* every layer's forward and backward pass keeps the input dtype;
* optimizer steps keep parameters and moment buffers in the parameter dtype;
* scalar loss values accumulate in float64, but the gradients they seed
  arrive in the network's dtype;
* serialization round-trips dtypes exactly;
* a float32 trainer smoke run is finite and within documented tolerance of
  the float64 run from identical seeds.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import ModelConfig, Trainer, build_model
from repro.nn import (
    Adam,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    ReLU,
    SGD,
    Sigmoid,
    Tanh,
    Tensor,
    bce_with_logits_loss,
    clip_grad_norm,
    clip_grad_value,
    default_dtype,
    gaussian_kl_loss,
    global_grad_norm,
    l1_loss,
    load_state_dict,
    mse_loss,
    no_grad,
    save_state_dict,
)
from repro.nn import functional as F
from repro.nn.tensor import concatenate, stack

DTYPES = (np.float32, np.float64)


def _nchw(dtype, rng, shape=(2, 3, 8, 8)):
    return Tensor(rng.standard_normal(shape).astype(dtype),
                  requires_grad=True)


class TestTensorOps:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_arithmetic_with_python_scalars_keeps_dtype(self, dtype, rng):
        x = Tensor(rng.standard_normal(5).astype(dtype), requires_grad=True)
        out = ((x * 2.0 + 1.0) / 3.0 - 0.5) ** 2.0
        assert out.dtype == dtype
        out.sum().backward()
        assert x.grad.dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("method", ["exp", "tanh", "sigmoid", "relu",
                                        "leaky_relu", "abs", "sqrt"])
    def test_unary_ops_keep_dtype(self, dtype, method, rng):
        x = Tensor(rng.random(6).astype(dtype) + 0.5, requires_grad=True)
        out = getattr(x, method)()
        assert out.dtype == dtype
        out.sum().backward()
        assert x.grad.dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_reductions_keep_dtype(self, dtype, rng):
        x = Tensor(rng.standard_normal((3, 4)).astype(dtype),
                   requires_grad=True)
        for out in (x.sum(), x.mean(axis=1), x.var(axis=0), x.max(axis=1)):
            assert out.dtype == dtype
        x.mean().backward()
        assert x.grad.dtype == dtype

    def test_max_backward_keeps_float32(self, rng):
        x = Tensor(np.array([[1.0, 3.0, 3.0]], dtype=np.float32),
                   requires_grad=True)
        x.max(axis=1).sum().backward()
        assert x.grad.dtype == np.float32

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_shape_ops_keep_dtype(self, dtype, rng):
        x = _nchw(dtype, rng)
        assert x.reshape(2, -1).dtype == dtype
        assert x.transpose(0, 2, 3, 1).dtype == dtype
        assert x.pad2d(1).dtype == dtype
        assert x[0:1].dtype == dtype
        assert concatenate([x, x], axis=1).dtype == dtype
        assert stack([x, x]).dtype == dtype

    def test_accumulation_from_float64_seed_keeps_float32(self, rng):
        """A float64 loss scalar seeds float32 gradients downstream."""
        x = Tensor(rng.standard_normal(4).astype(np.float32),
                   requires_grad=True)
        loss = mse_loss(x, Tensor(np.zeros(4, dtype=np.float32)))
        assert loss.data.dtype == np.float64
        loss.backward()
        assert x.grad.dtype == np.float32

    def test_repeated_accumulation_keeps_dtype(self, rng):
        x = Tensor(rng.standard_normal(3).astype(np.float32),
                   requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        assert x.grad.dtype == np.float32
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))


class TestBackwardSeedValidation:
    def test_dtype_mismatched_seed_raises(self, rng):
        x = Tensor(rng.standard_normal(3).astype(np.float32),
                   requires_grad=True)
        out = x * 2.0
        with pytest.raises(TypeError, match="dtype"):
            out.backward(np.ones(3, dtype=np.float64))

    def test_matching_seed_accepted(self, rng):
        x = Tensor(rng.standard_normal(3).astype(np.float32),
                   requires_grad=True)
        (x * 2.0).backward(np.ones(3, dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.full(3, 2.0))

    def test_non_broadcastable_seed_raises_clear_error(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        out = x * 2.0
        with pytest.raises(ValueError, match="not broadcastable"):
            out.backward(np.ones((2, 4)))

    def test_seed_larger_than_tensor_raises(self, rng):
        """A seed that would broadcast the *tensor* up is rejected too."""
        x = Tensor(rng.standard_normal((1, 4)), requires_grad=True)
        out = x * 2.0
        with pytest.raises(ValueError, match="not broadcastable"):
            out.backward(np.ones((3, 4)))

    def test_broadcastable_seed_still_works(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        (x * 2.0).backward(np.ones((1, 4)))
        np.testing.assert_allclose(x.grad, np.full((3, 4), 2.0))


class TestLayerPropagation:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_linear(self, dtype, rng):
        with default_dtype(dtype):
            layer = Linear(4, 3, rng=rng)
        assert layer.weight.dtype == dtype
        x = Tensor(rng.standard_normal((5, 4)).astype(dtype),
                   requires_grad=True)
        out = layer(x)
        assert out.dtype == dtype
        out.sum().backward()
        assert x.grad.dtype == dtype
        assert layer.weight.grad.dtype == dtype
        assert layer.bias.grad.dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("layer_cls", [Conv2d, ConvTranspose2d])
    def test_conv_layers(self, dtype, layer_cls, rng):
        with default_dtype(dtype):
            layer = layer_cls(3, 5, 4, stride=2, padding=1, rng=rng)
        x = _nchw(dtype, rng)
        out = layer(x)
        assert out.dtype == dtype
        (out * out).sum().backward()
        assert x.grad.dtype == dtype
        assert layer.weight.grad.dtype == dtype
        assert layer.bias.grad.dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_batchnorm_train_and_eval(self, dtype, rng):
        with default_dtype(dtype):
            layer = BatchNorm2d(3)
        assert layer._buffers["running_mean"].dtype == dtype
        x = _nchw(dtype, rng)
        out = layer(x)
        assert out.dtype == dtype
        assert layer._buffers["running_mean"].dtype == dtype
        out.sum().backward()
        assert x.grad.dtype == dtype
        layer.eval()
        assert layer(x.detach()).dtype == dtype        # graph eval path
        with no_grad():
            assert layer(x.detach()).dtype == dtype    # fused eval path

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_activations_dropout_pools(self, dtype, rng):
        x = _nchw(dtype, rng)
        for module in (ReLU(), LeakyReLU(0.2), Tanh(), Sigmoid(),
                       Flatten(), GlobalAvgPool2d(),
                       Dropout(0.5, rng=np.random.default_rng(0))):
            assert module(x).dtype == dtype
        assert F.avg_pool2d(x, 2).dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_losses_feed_gradients_in_dtype(self, dtype, rng):
        pred = Tensor(rng.standard_normal((4, 6)).astype(dtype),
                      requires_grad=True)
        target = Tensor(rng.standard_normal((4, 6)).astype(dtype))
        for loss in (mse_loss(pred, target), l1_loss(pred, target),
                     bce_with_logits_loss(pred, 1.0),
                     gaussian_kl_loss(pred, target * 0.0)):
            pred.zero_grad()
            loss.backward()
            assert pred.grad.dtype == dtype

    def test_module_to_casts_everything(self, rng):
        layer = BatchNorm2d(3)
        layer.to("float32")
        assert layer.weight.dtype == np.float32
        assert layer._buffers["running_var"].dtype == np.float32
        layer.to("float64")
        assert layer.dtype == np.float64


class TestOptimizerPropagation:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_sgd_momentum_stays_in_dtype(self, dtype, rng):
        param = Tensor(rng.standard_normal(4).astype(dtype),
                       requires_grad=True)
        optimizer = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.01)
        for _ in range(2):
            optimizer.zero_grad()
            (param * param).sum().backward()
            optimizer.step()
        assert param.data.dtype == dtype
        assert optimizer._velocity[0].dtype == dtype

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_adam_moments_stay_in_dtype(self, dtype, rng):
        param = Tensor(rng.standard_normal(4).astype(dtype),
                       requires_grad=True)
        optimizer = Adam([param], lr=0.01)
        optimizer.zero_grad()
        (param * param).sum().backward()
        optimizer.step()
        assert param.data.dtype == dtype
        assert optimizer._m[0].dtype == dtype
        assert optimizer._v[0].dtype == dtype

    def test_updates_are_in_place(self, rng):
        param = Tensor(rng.standard_normal(4), requires_grad=True)
        buffer = param.data
        optimizer = Adam([param], lr=0.01)
        (param * param).sum().backward()
        optimizer.step()
        assert param.data is buffer

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_clipping_preserves_dtype(self, dtype, rng):
        param = Tensor(rng.standard_normal(64).astype(dtype),
                       requires_grad=True)
        (param * param).sum().backward()
        norm = clip_grad_norm([param], 1e-3)
        assert param.grad.dtype == dtype
        assert norm > 0
        clip_grad_value([param], 1e-4)
        assert param.grad.dtype == dtype
        assert np.all(np.abs(param.grad) <= 1e-4 + 1e-12)

    def test_global_norm_matches_float64_computation(self, rng):
        values = rng.standard_normal(1000)
        param = Tensor(values.astype(np.float32), requires_grad=True)
        param.grad = param.data.copy()
        expected = float(np.linalg.norm(values.astype(np.float32)
                                        .astype(np.float64)))
        assert global_grad_norm([param]) == pytest.approx(expected, rel=1e-6)


class TestSerializationDtype:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_npz_roundtrip_preserves_dtype(self, tmp_path, dtype, rng):
        state = {"weight": rng.standard_normal((3, 3)).astype(dtype)}
        path = tmp_path / "state.npz"
        save_state_dict(state, path)
        restored = load_state_dict(path)
        assert restored["weight"].dtype == dtype
        np.testing.assert_array_equal(restored["weight"], state["weight"])

    def test_load_state_dict_adopts_stored_dtype(self, rng):
        with default_dtype("float32"):
            source = BatchNorm2d(2)
        target = BatchNorm2d(2)                 # float64-initialised
        assert target.weight.dtype == np.float64
        target.load_state_dict(source.state_dict())
        assert target.weight.dtype == np.float32
        assert target._buffers["running_mean"].dtype == np.float32

    def test_buffer_registration_preserves_float32(self):
        module = BatchNorm2d(2)
        module.register_buffer("extra", np.ones(2, dtype=np.float32))
        assert module._buffers["extra"].dtype == np.float32

    def test_model_checkpoint_roundtrip_exact(self, tmp_path, rng):
        config = ModelConfig.tiny()
        model = build_model("cvae_gan", config, rng=rng)
        assert model.dtype == np.float32
        path = tmp_path / "model.npz"
        save_state_dict(model.state_dict(), path)
        fresh = build_model("cvae_gan", config,
                            rng=np.random.default_rng(123))
        fresh.load_state_dict(load_state_dict(path))
        for (_, a), (_, b) in zip(model.named_parameters(),
                                  fresh.named_parameters()):
            assert a.data.dtype == b.data.dtype
            np.testing.assert_array_equal(a.data, b.data)


class TestTrainerPrecision:
    """The documented float32-vs-float64 numerical policy, end to end."""

    #: Documented tolerance: one cVAE-GAN optimisation step from identical
    #: float64 draws differs between float32 and float64 by well under 1%
    #: on every reported loss statistic (see README "Precision & backends").
    STEP_RTOL = 1e-2

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import generate_paired_dataset
        from repro.flash import BlockGeometry, FlashChannel
        channel = FlashChannel(geometry=BlockGeometry(16, 16),
                               rng=np.random.default_rng(5))
        return generate_paired_dataset(channel, pe_cycles=(4000,),
                                       arrays_per_pe=12, array_size=8)

    def _one_step(self, dtype, dataset):
        config = replace(ModelConfig.tiny(), dtype=dtype)
        model = build_model("cvae_gan", config,
                            rng=np.random.default_rng(11))
        trainer = Trainer(model, dataset, rng=np.random.default_rng(12))
        return model, trainer.train_step(*dataset[0:4])

    def test_float32_smoke_step_finite_and_in_dtype(self, dataset):
        model, stats = self._one_step("float32", dataset)
        assert all(np.isfinite(value) for value in stats.values())
        assert {p.data.dtype for p in model.parameters()} == {np.dtype(np.float32)}
        assert {p.grad.dtype for p in model.parameters()
                if p.grad is not None} == {np.dtype(np.float32)}

    def test_float32_step_within_tolerance_of_float64(self, dataset):
        _, stats32 = self._one_step("float32", dataset)
        _, stats64 = self._one_step("float64", dataset)
        assert set(stats32) == set(stats64)
        for key in stats64:
            assert stats32[key] == pytest.approx(stats64[key],
                                                 rel=self.STEP_RTOL), key

    def test_sampling_is_deterministic_within_dtype(self, dataset):
        """Bit-identical within a dtype: same seed, same float32 samples."""
        config = ModelConfig.tiny()
        outputs = []
        for _ in range(2):
            model = build_model("cvae_gan", config,
                                rng=np.random.default_rng(21))
            program = np.zeros((2, 1, 8, 8))
            outputs.append(model.sample(program, np.full(2, 0.5),
                                        np.random.default_rng(22)))
        np.testing.assert_array_equal(outputs[0], outputs[1])
        assert outputs[0].dtype == np.float32

    def test_float64_opt_in_still_works(self, dataset):
        model, stats = self._one_step("float64", dataset)
        assert model.dtype == np.float64
        assert all(np.isfinite(value) for value in stats.values())
