"""Tests for conv2d / conv_transpose2d / pooling against references."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal

from repro.nn import Tensor
from repro.nn import functional as F

from tests.nn.conftest import numerical_gradient


def _reference_conv2d(x, w, b, stride, padding):
    """Direct (slow) cross-correlation used as an oracle."""
    batch, in_channels, height, width = x.shape
    out_channels = w.shape[0]
    kernel = w.shape[2]
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w))
    for n in range(batch):
        for o in range(out_channels):
            acc = np.zeros((x.shape[2] - kernel + 1, x.shape[3] - kernel + 1))
            for c in range(in_channels):
                acc += signal.correlate2d(x[n, c], w[o, c], mode="valid")
            out[n, o] = acc[::stride, ::stride]
            if b is not None:
                out[n, o] += b[o]
    return out


class TestOutputSizes:
    @pytest.mark.parametrize("size,kernel,stride,padding,expected", [
        (64, 4, 2, 1, 32),
        (32, 4, 2, 1, 16),
        (8, 3, 1, 1, 8),
        (16, 4, 2, 0, 7),
    ])
    def test_conv_output_size(self, size, kernel, stride, padding, expected):
        assert F.conv_output_size(size, kernel, stride, padding) == expected

    @pytest.mark.parametrize("size,kernel,stride,padding,expected", [
        (32, 4, 2, 1, 64),
        (1, 4, 2, 1, 2),
        (8, 3, 1, 1, 8),
    ])
    def test_conv_transpose_output_size(self, size, kernel, stride, padding,
                                        expected):
        assert F.conv_transpose_output_size(size, kernel, stride,
                                            padding) == expected

    def test_transpose_inverts_conv_spatial_size(self):
        for size in (8, 16, 32, 64):
            down = F.conv_output_size(size, 4, 2, 1)
            up = F.conv_transpose_output_size(down, 4, 2, 1)
            assert up == size


class TestIm2Col:
    def test_im2col_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> (the two maps are adjoint)."""
        x = rng.standard_normal((2, 3, 6, 6))
        cols = F.im2col(x, kernel=4, stride=2, padding=1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, kernel=4, stride=2, padding=1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_im2col_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = F.im2col(x, kernel=4, stride=2, padding=1)
        assert cols.shape == (2, 3 * 16, 16)

    def test_im2col_identity_kernel_one(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        cols = F.im2col(x, kernel=1, stride=1, padding=0)
        np.testing.assert_allclose(cols.reshape(1, 2, 4, 4), x)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_forward_matches_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 4, 4))
        b = rng.standard_normal(4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride,
                       padding=padding)
        reference = _reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, reference, atol=1e-10)

    def test_forward_without_bias(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1)
        reference = _reference_conv2d(x, w, None, 1, 1)
        np.testing.assert_allclose(out.data, reference, atol=1e-10)

    def test_rejects_channel_mismatch(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_rejects_rectangular_kernel(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 3, 3, 5)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradients_match_numerical(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 4, 4)) * 0.2, requires_grad=True)
        b = Tensor(rng.standard_normal(3) * 0.2, requires_grad=True)
        out = F.conv2d(x, w, b, stride=2, padding=1)
        (out * out).sum().backward()

        def forward():
            result = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                              stride=2, padding=1)
            return float((result.data ** 2).sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(forward, x.data),
                                   atol=1e-5)
        np.testing.assert_allclose(w.grad, numerical_gradient(forward, w.data),
                                   atol=1e-5)
        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)


class TestConvTranspose2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((3, 5, 4, 4)))
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 5, 16, 16)

    def test_adjoint_of_conv2d(self, rng):
        """conv_transpose2d with weight W is the adjoint of conv2d with W."""
        x = rng.standard_normal((1, 4, 8, 8))      # conv input
        y = rng.standard_normal((1, 6, 4, 4))      # conv output
        w = rng.standard_normal((6, 4, 4, 4))
        conv_out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        # Transposed conv uses the (C_in, C_out, K, K) layout.
        w_t = np.transpose(w, (0, 1, 2, 3))
        transpose_out = F.conv_transpose2d(
            Tensor(y), Tensor(w_t), stride=2, padding=1).data
        lhs = float((conv_out * y).sum())
        rhs = float((x * transpose_out).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_rejects_channel_mismatch(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 8, 8)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv_transpose2d(x, w)

    def test_gradients_match_numerical(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 4, 4, 4)) * 0.2, requires_grad=True)
        b = Tensor(rng.standard_normal(4) * 0.2, requires_grad=True)
        out = F.conv_transpose2d(x, w, b, stride=2, padding=1)
        (out * out).sum().backward()

        def forward():
            result = F.conv_transpose2d(Tensor(x.data), Tensor(w.data),
                                        Tensor(b.data), stride=2, padding=1)
            return float((result.data ** 2).sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(forward, x.data),
                                   atol=1e-5)
        np.testing.assert_allclose(w.grad, numerical_gradient(forward, w.data),
                                   atol=1e-5)
        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)

    def test_stride_one_equals_full_correlation_adjoint(self, rng):
        """With stride 1 and no padding, output = input 'spread' by the kernel."""
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 1, 1] = 1.0
        w = rng.standard_normal((1, 1, 3, 3))
        out = F.conv_transpose2d(Tensor(x), Tensor(w), stride=1, padding=0).data
        assert out.shape == (1, 1, 5, 5)
        np.testing.assert_allclose(out[0, 0, 1:4, 1:4], w[0, 0], atol=1e-12)


class TestAvgPool:
    def test_average_pooling_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        expected = np.array([[2.5, 4.5], [10.5, 12.5]])
        np.testing.assert_allclose(out.data[0, 0], expected)

    def test_gradient_is_uniform(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.avg_pool2d(x, kernel=2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_multichannel_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        assert F.avg_pool2d(x, kernel=4).shape == (2, 3, 2, 2)
