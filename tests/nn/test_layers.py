"""Tests for the Module system and the individual layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)

from tests.nn.conftest import numerical_gradient


class TinyModel(Module):
    """Two-layer model used to test parameter traversal."""

    def __init__(self, rng=None):
        super().__init__()
        self.first = Linear(4, 8, rng=rng)
        self.second = Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestModule:
    def test_named_parameters_are_prefixed(self, rng):
        model = TinyModel(rng)
        names = {name for name, _ in model.named_parameters()}
        assert names == {"first.weight", "first.bias",
                         "second.weight", "second.bias"}

    def test_num_parameters(self, rng):
        model = TinyModel(rng)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad_clears_all(self, rng):
        model = TinyModel(rng)
        out = model(Tensor(rng.standard_normal((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_requires_grad_toggle(self, rng):
        model = TinyModel(rng)
        model.requires_grad_(False)
        assert all(not p.requires_grad for p in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        model = TinyModel(rng)
        other = TinyModel(np.random.default_rng(99))
        other.load_state_dict(model.state_dict())
        for (_, a), (_, b) in zip(model.named_parameters(),
                                  other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_load_state_dict_shape_mismatch(self, rng):
        model = TinyModel(rng)
        state = model.state_dict()
        state["first.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_missing_key(self, rng):
        model = TinyModel(rng)
        state = model.state_dict()
        del state["second.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Linear(3, 3, rng=rng), ReLU())
        x = Tensor(rng.standard_normal((2, 3)))
        expected = model[1](model[0](x))
        np.testing.assert_allclose(model(x).data, expected.data)

    def test_sequential_len_and_append(self, rng):
        model = Sequential(Identity())
        model.append(ReLU())
        assert len(model) == 2

    def test_module_list_registers_parameters(self, rng):
        blocks = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(list(blocks.named_parameters())) == 4
        assert len(blocks) == 2

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(Tensor([1.0]))


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(rng.standard_normal((7, 5)))).shape == (7, 3)

    def test_matches_manual_computation(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_gradient_flow(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConvLayers:
    def test_conv2d_shape_paper_config(self, rng):
        """C64 layer of Remark 1: 4x4 kernel, stride 2, padding 1."""
        layer = Conv2d(1, 64, 4, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 1, 64, 64))))
        assert out.shape == (1, 64, 32, 32)

    def test_conv_transpose2d_shape_paper_config(self, rng):
        layer = ConvTranspose2d(64, 1, 4, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 64, 32, 32))))
        assert out.shape == (1, 1, 64, 64)

    def test_conv_weight_initialisation_scale(self, rng):
        layer = Conv2d(8, 16, 3, rng=rng)
        assert abs(layer.weight.data.std() - 0.02) < 0.01

    def test_conv_without_bias(self, rng):
        layer = Conv2d(2, 4, 3, bias=False, rng=rng)
        assert layer.bias is None

    def test_down_up_roundtrip_shapes(self, rng):
        """A full U-Net style down/up chain restores the input resolution."""
        x = Tensor(rng.standard_normal((1, 1, 16, 16)))
        down1 = Conv2d(1, 4, 4, 2, 1, rng=rng)
        down2 = Conv2d(4, 8, 4, 2, 1, rng=rng)
        up1 = ConvTranspose2d(8, 4, 4, 2, 1, rng=rng)
        up2 = ConvTranspose2d(4, 1, 4, 2, 1, rng=rng)
        out = up2(up1(down2(down1(x))))
        assert out.shape == x.shape


class TestBatchNorm:
    def test_normalises_in_training_mode(self, rng):
        layer = BatchNorm2d(3)
        x = Tensor(rng.standard_normal((8, 3, 4, 4)) * 5 + 2)
        out = layer(x)
        means = out.data.mean(axis=(0, 2, 3))
        stds = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(means, np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(stds, np.ones(3), atol=1e-3)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)) + 10.0)
        layer(x)
        assert np.all(layer._buffers["running_mean"] > 1.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2, momentum=1.0)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)) * 2 + 3)
        layer(x)
        layer.eval()
        out_eval = layer(x)
        means = out_eval.data.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(means, np.zeros(2), atol=0.2)

    def test_rejects_non_nchw_input(self, rng):
        layer = BatchNorm2d(2)
        with pytest.raises(ValueError):
            layer(Tensor(rng.standard_normal((4, 2))))

    def test_gradient_matches_numerical(self, rng):
        layer = BatchNorm2d(2)
        layer.momentum = 0.0
        x = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        out = layer(x)
        (out * out).sum().backward()

        def forward():
            result = layer(Tensor(x.data))
            return float((result.data ** 2).sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(forward, x.data),
                                   atol=1e-4)

    def test_state_dict_includes_running_stats(self, rng):
        layer = BatchNorm2d(2)
        layer(Tensor(rng.standard_normal((4, 2, 3, 3)) + 1))
        state = layer.state_dict()
        fresh = BatchNorm2d(2)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh._buffers["running_mean"],
                                   layer._buffers["running_mean"])


class TestActivationsAndUtility:
    def test_identity_passthrough(self, rng):
        x = Tensor(rng.standard_normal((2, 3)))
        assert Identity()(x) is x

    def test_relu_clips_negative(self):
        out = ReLU()(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [-0.1, 2.0])

    def test_tanh_and_sigmoid_ranges(self, rng):
        x = Tensor(rng.standard_normal((10,)) * 10)
        assert np.all(np.abs(Tanh()(x).data) <= 1.0)
        sig = Sigmoid()(x).data
        assert np.all((sig >= 0.0) & (sig <= 1.0))

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_training_preserves_expectation(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((200, 200)))
        out = layer(x)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 5)))
        assert Flatten()(x).shape == (2, 60)

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        out = GlobalAvgPool2d()(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))
