"""Tests for the lazy evaluation graph + fused-kernel realization.

The lazy layer's contract is bit-identity: recording operations as
:class:`repro.nn.lazy.LazyOp` nodes and realizing them through fused
backend lowerings (fused elementwise chains, folded concatenations,
analytic expand columns) must reproduce the eager pipeline's output
exactly — same bits, same dtype — on every backend.  These tests pin
that contract end to end (batched sampling on all four architectures)
and per lowering, plus the recording semantics: lazy nodes only appear
inside :func:`~repro.nn.lazy.lazy_eval` with gradients disabled, shape
metadata never forces realization, and any op the recorder does not
understand falls back through ``Tensor.data``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.channel import GenerativeChannel
from repro.core import ModelConfig, build_model
from repro.nn import (
    Tensor,
    lazy_default,
    no_grad,
    set_lazy_default,
    use_backend,
)
from repro.nn import functional as F
from repro.nn import lazy
from repro.nn.backend import NumpyBackend, build_backend
from repro.nn.cjit import cjit_available
from repro.nn.tensor import concatenate

needs_compiler = pytest.mark.skipif(
    not cjit_available(), reason="no C compiler (cc/clang/gcc) on PATH")

ARCHITECTURES = ["cvae_gan", "cgan", "cvae", "bicycle_gan"]


def _sample_voltages(model, lazy_on: bool, backend=None) -> np.ndarray:
    """One deterministic batched-sampling pass with the given policy."""
    import contextlib

    previous = set_lazy_default(lazy_on)
    try:
        ctx = use_backend(backend) if backend is not None \
            else contextlib.nullcontext()
        with ctx:
            channel = GenerativeChannel(model, rng=np.random.default_rng(3))
            blocks = np.random.default_rng(6).integers(0, 8, (4, 16, 16))
            return channel.read_repeated(blocks, 123, num_samples=2)
    finally:
        set_lazy_default(previous)


class TestRecordingSemantics:
    def test_records_only_inside_scope_with_grad_disabled(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.standard_normal((1, 2, 6, 6)).astype(np.float32))
        w = Tensor(rng.standard_normal((3, 2, 4, 4)).astype(np.float32))
        # Outside lazy_eval: eager even under no_grad.
        with no_grad():
            assert F.conv2d(x, w, stride=2, padding=1)._lazy is None
        # Inside lazy_eval but with gradients enabled: eager (autograd owns
        # the graph).
        with lazy.lazy_eval():
            xg = Tensor(x.numpy(), requires_grad=True)
            assert F.conv2d(xg, w, stride=2, padding=1)._lazy is None
            # Both conditions met: the conv records a node.
            with no_grad():
                out = F.conv2d(x, w, stride=2, padding=1)
                assert out._lazy is not None

    def test_shape_metadata_does_not_realize(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 3, 4, 4)).astype(np.float32))
        with no_grad(), lazy.lazy_eval():
            out = F.conv2d(x, w, stride=2, padding=1).leaky_relu(0.2)
            assert out.shape == (2, 4, 4, 4)
            assert out.ndim == 4
            assert out.size == 2 * 4 * 4 * 4
            assert out.dtype == np.float32
            assert out._lazy is not None and out._lazy.value is None
            # Reading .data is the realization barrier.
            value = out.data
            assert out._lazy is None
            assert value.shape == (2, 4, 4, 4)

    def test_unknown_op_falls_back_through_data(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 3, 4, 4)).astype(np.float32))
        with no_grad():
            want = F.conv2d(x, w, stride=2, padding=1).sum().item()
            with lazy.lazy_eval():
                got = F.conv2d(x, w, stride=2, padding=1).sum().item()
        assert got == want

    def test_lazy_default_override_and_env(self, monkeypatch):
        previous = set_lazy_default(False)
        try:
            assert lazy_default() is False
            set_lazy_default(True)
            assert lazy_default() is True
            set_lazy_default(None)
            monkeypatch.setenv("REPRO_NN_LAZY", "0")
            assert lazy_default() is False
            monkeypatch.setenv("REPRO_NN_LAZY", "1")
            assert lazy_default() is True
            monkeypatch.delenv("REPRO_NN_LAZY")
            assert lazy_default() is True  # lazy is the default policy
        finally:
            set_lazy_default(previous)


class TestSamplingBitIdentity:
    """Realized lazy sampling must equal eager sampling bit for bit."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_numpy_backend(self, arch, dtype):
        config = replace(ModelConfig.small(16), dtype=dtype)
        model = build_model(arch, config, rng=np.random.default_rng(5))
        eager = _sample_voltages(model, lazy_on=False)
        realized = _sample_voltages(model, lazy_on=True)
        np.testing.assert_array_equal(realized, eager)

    @needs_compiler
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_cjit_backend(self, dtype, cjit_backend):
        config = replace(ModelConfig.small(16), dtype=dtype)
        model = build_model("cvae_gan", config,
                            rng=np.random.default_rng(5))
        eager = _sample_voltages(model, lazy_on=False)
        realized = _sample_voltages(model, lazy_on=True,
                                    backend=cjit_backend)
        np.testing.assert_array_equal(realized, eager)
        assert cjit_backend.fusion_counters["fused_chains"] > 0

    def test_sample_lazy_flag_overrides_default(self):
        config = replace(ModelConfig.small(16), dtype="float32")
        model = build_model("cvae_gan", config,
                            rng=np.random.default_rng(5))
        programs = np.random.default_rng(8).uniform(
            -1, 1, size=(2, 1, 16, 16)).astype(np.float32)
        pe = np.full(2, 0.7)
        previous = set_lazy_default(False)
        try:
            eager = model.sample(programs, pe, np.random.default_rng(9),
                                 lazy=False)
            forced = model.sample(programs, pe, np.random.default_rng(9),
                                  lazy=True)
        finally:
            set_lazy_default(previous)
        np.testing.assert_array_equal(forced, eager)


class TestRealizerLowerings:
    """Each fused lowering against its eager equivalent, per backend."""

    def _backends(self, cjit_backend):
        backends = [NumpyBackend(), build_backend("reference")]
        if cjit_available():
            backends.append(cjit_backend)
        return backends

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_fused_elementwise_matches_eager_sequence(self, dtype,
                                                      cjit_backend):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((2, 4, 5, 5)).astype(dtype)
        bias = rng.standard_normal(4).astype(dtype)
        scale = rng.standard_normal(4).astype(dtype)
        shift = rng.standard_normal(4).astype(dtype)
        stages = [("bias_add", bias), ("affine", scale, shift),
                  ("leaky_relu", 0.2), ("mul_scalar", 0.5)]
        want = x + bias[:, None, None]
        want = want * scale[:, None, None] + shift[:, None, None]
        want = np.where(want > 0, want, want * dtype(0.2))
        want = want * dtype(0.5)
        for backend in self._backends(cjit_backend):
            got = backend.fused_elementwise(x.copy(), stages, inplace=False)
            np.testing.assert_array_equal(got, want)
            assert got.dtype == dtype

    def test_fused_elementwise_splits_unfusable_chain(self, cjit_backend):
        """tanh mid-chain: compiled prefix + NumPy remainder, same bits."""
        rng = np.random.default_rng(12)
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        bias = rng.standard_normal(3).astype(np.float32)
        stages = [("bias_add", bias), ("tanh",), ("bias_add", bias)]
        want = NumpyBackend().fused_elementwise(x.copy(), stages)
        np.testing.assert_array_equal(
            np.tanh(x + bias[:, None, None]) + bias[:, None, None], want)
        if cjit_available():
            got = cjit_backend.fused_elementwise(x.copy(), stages)
            np.testing.assert_array_equal(got, want)

    def test_fused_elementwise_inplace_semantics(self):
        backend = NumpyBackend()
        x = np.ones((2, 2), dtype=np.float32)
        out = backend.fused_elementwise(x, [("mul_scalar", 2.0)],
                                        inplace=True)
        assert out is x and x[0, 0] == 2.0
        y = np.ones((2, 2), dtype=np.float32)
        out = backend.fused_elementwise(y, [("mul_scalar", 2.0)],
                                        inplace=False)
        assert out is not y and y[0, 0] == 1.0

    @pytest.mark.parametrize("geometry", [(4, 2, 1), (3, 1, 1)])
    def test_segmented_cols_match_materialized_concat(self, geometry,
                                                      cjit_backend):
        """im2col_into + expand_cols_into == im2col of the real concat."""
        kernel, stride, padding = geometry
        rng = np.random.default_rng(13)
        height = width = 8
        x = rng.standard_normal((2, 3, height, width)).astype(np.float32)
        values = rng.standard_normal((2, 5)).astype(np.float32)
        expanded = np.broadcast_to(values[:, :, None, None],
                                   (2, 5, height, width))
        stacked = np.concatenate([x, expanded], axis=1)
        out_h = (height + 2 * padding - kernel) // stride + 1
        for backend in self._backends(cjit_backend):
            want = backend.im2col(stacked, kernel, stride, padding)
            cols6 = np.empty((2, 8, kernel, kernel, out_h, out_h),
                             dtype=np.float32)
            backend.im2col_into(x, cols6, 0, kernel, stride, padding)
            backend.expand_cols_into(values, cols6, 3, height, width,
                                     kernel, stride, padding)
            got = cols6.reshape(2, 8 * kernel * kernel, out_h * out_h)
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_cast_stage_propagates_dtype(self, dtype):
        other = np.float64 if dtype == np.float32 else np.float32
        rng = np.random.default_rng(14)
        x = Tensor(rng.standard_normal((1, 2, 6, 6)).astype(dtype))
        w = Tensor(rng.standard_normal((2, 2, 4, 4)).astype(dtype))
        with no_grad():
            want = F.conv2d(x, w, stride=2, padding=1).astype(other)
            with lazy.lazy_eval():
                out = F.conv2d(x, w, stride=2, padding=1).astype(other)
                assert out.dtype == other  # metadata, before realizing
        np.testing.assert_array_equal(out.numpy(), want.numpy())
        assert out.numpy().dtype == other


class TestFusionCounters:
    def test_lazy_sampling_populates_counters(self):
        backend = NumpyBackend()
        config = replace(ModelConfig.small(16), dtype="float32")
        model = build_model("cvae_gan", config,
                            rng=np.random.default_rng(5))
        _sample_voltages(model, lazy_on=True, backend=backend)
        stats = backend.fusion_stats()
        assert stats["realized_nodes"] > 0
        assert stats["fused_chains"] > 0
        assert stats["fused_stages"] >= stats["fused_chains"]
        assert stats["concat_folds"] > 0
        assert stats["expand_folds"] > 0
        assert stats["fallbacks"] == 0

    def test_fusion_stats_returns_a_copy(self):
        backend = NumpyBackend()
        stats = backend.fusion_stats()
        stats["fused_chains"] = 999
        assert backend.fusion_stats()["fused_chains"] != 999


class TestStatsCLI:
    def test_cli_stats_reports_per_backend_counters(self, capsys, tmp_path,
                                                    monkeypatch):
        from repro.artifacts.kernels import KERNEL_CACHE_ENV
        from repro.nn import backend as backend_mod

        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path))
        assert backend_mod.main(["--stats"]) == 0
        out = capsys.readouterr().out
        assert "numpy fusion stats:" in out
        assert "fused_chains=1" in out
        assert "concat_folds=1" in out
        if cjit_available():
            assert "cjit fusion stats:" in out
            assert "fused_kernels_compiled=" in out
