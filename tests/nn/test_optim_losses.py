"""Tests for optimizers, loss functions and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Linear,
    SGD,
    Sequential,
    Tanh,
    Tensor,
    bce_loss,
    bce_with_logits_loss,
    gaussian_kl_loss,
    hinge_loss,
    l1_loss,
    load_state_dict,
    mse_loss,
    save_state_dict,
)


class TestSGD:
    def test_single_step_matches_formula(self):
        parameter = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        (parameter * parameter).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [1.0 - 0.2, 2.0 - 0.4])

    def test_momentum_accumulates(self):
        parameter = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, momentum=0.9)
        for _ in range(2):
            optimizer.zero_grad()
            (parameter * 1.0).sum().backward()
            optimizer.step()
        # First step: -0.1; second step velocity = 0.9 * 1 + 1 = 1.9 -> -0.19.
        assert parameter.data[0] == pytest.approx(1.0 - 0.1 - 0.19)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_skips_parameters_without_grad(self):
        parameter = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()
        assert parameter.data[0] == 1.0

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_non_positive_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        parameter = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([parameter], lr=0.01)
        (parameter * 3.0).sum().backward()
        optimizer.step()
        # After bias correction the first Adam step is ~lr * sign(grad).
        assert parameter.data[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_converges_on_quadratic(self):
        parameter = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            (parameter * parameter).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [0.0, 0.0], atol=1e-2)

    def test_trains_network_to_fit_linear_map(self):
        rng = np.random.default_rng(7)
        model = Sequential(Linear(3, 16, rng=rng), Tanh(), Linear(16, 1, rng=rng))
        optimizer = Adam(model.parameters(), lr=5e-3)
        inputs = rng.standard_normal((64, 3))
        targets = (inputs @ np.array([[1.0], [-2.0], [0.5]])) * 0.3
        losses = []
        for _ in range(150):
            optimizer.zero_grad()
            loss = mse_loss(model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.1

    def test_rejects_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.999))


class TestLosses:
    def test_mse_value(self):
        prediction = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        target = Tensor(np.array([0.0, 2.0, 5.0]))
        assert mse_loss(prediction, target).item() == pytest.approx(5.0 / 3.0)

    def test_mse_gradient(self):
        prediction = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        mse_loss(prediction, Tensor(np.array([0.0, 0.0]))).backward()
        np.testing.assert_allclose(prediction.grad, [1.0, 2.0])

    def test_l1_value(self):
        prediction = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        target = Tensor(np.array([0.0, 0.0]))
        assert l1_loss(prediction, target).item() == pytest.approx(1.5)

    def test_bce_perfect_predictions_near_zero(self):
        probabilities = Tensor(np.array([0.999, 0.999]), requires_grad=True)
        assert bce_loss(probabilities, 1.0).item() < 0.01

    def test_bce_wrong_predictions_large(self):
        probabilities = Tensor(np.array([0.999]), requires_grad=True)
        assert bce_loss(probabilities, 0.0).item() > 3.0

    def test_bce_soft_target(self):
        probabilities = Tensor(np.array([0.5]), requires_grad=True)
        value = bce_loss(probabilities, 0.5).item()
        assert value == pytest.approx(-np.log(0.5), rel=1e-6)

    def test_bce_with_logits_matches_probability_form(self):
        logits = np.array([-2.0, 0.5, 3.0])
        for target in (0.0, 1.0):
            stable = bce_with_logits_loss(Tensor(logits, requires_grad=True),
                                          target).item()
            probabilities = Tensor(1 / (1 + np.exp(-logits)), requires_grad=True)
            reference = bce_loss(probabilities, target).item()
            assert stable == pytest.approx(reference, rel=1e-5)

    def test_bce_with_logits_extreme_logits_finite(self):
        logits = Tensor(np.array([-80.0, 80.0]), requires_grad=True)
        assert np.isfinite(bce_with_logits_loss(logits, 1.0).item())

    def test_gaussian_kl_zero_for_standard_normal(self):
        mu = Tensor(np.zeros((4, 6)), requires_grad=True)
        logvar = Tensor(np.zeros((4, 6)), requires_grad=True)
        assert gaussian_kl_loss(mu, logvar).item() == pytest.approx(0.0)

    def test_gaussian_kl_positive_otherwise(self):
        mu = Tensor(np.ones((2, 6)), requires_grad=True)
        logvar = Tensor(np.full((2, 6), -1.0), requires_grad=True)
        assert gaussian_kl_loss(mu, logvar).item() > 0.0

    def test_gaussian_kl_closed_form(self):
        mu_value = np.array([[0.5, -0.5]])
        logvar_value = np.array([[0.2, -0.3]])
        expected = -0.5 * np.sum(1 + logvar_value - mu_value ** 2
                                 - np.exp(logvar_value))
        result = gaussian_kl_loss(Tensor(mu_value, requires_grad=True),
                                  Tensor(logvar_value, requires_grad=True))
        assert result.item() == pytest.approx(expected)

    def test_hinge_loss_branches(self):
        logits = Tensor(np.array([0.5, -0.5]), requires_grad=True)
        assert hinge_loss(logits, real=True).item() == pytest.approx(1.0)
        assert hinge_loss(logits, real=False).item() == pytest.approx(1.0)
        assert hinge_loss(logits, real=True, for_generator=True).item() == \
            pytest.approx(0.0)


class TestSerialization:
    def test_roundtrip_through_npz(self, tmp_path, rng):
        model = Sequential(Linear(4, 4, rng=rng), Tanh(), Linear(4, 2, rng=rng))
        path = tmp_path / "weights.npz"
        save_state_dict(model.state_dict(), path)
        restored = load_state_dict(path)
        fresh = Sequential(Linear(4, 4), Tanh(), Linear(4, 2))
        fresh.load_state_dict(restored)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, fresh(x).data)

    def test_keys_with_dots_survive(self, tmp_path):
        state = {"a.b.c": np.array([1.0, 2.0])}
        path = tmp_path / "state.npz"
        save_state_dict(state, path)
        assert "a.b.c" in load_state_dict(path)
