"""Tests for learning-rate schedulers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    LinearWarmupLR,
    StepLR,
    Tensor,
    clip_grad_norm,
    clip_grad_value,
    global_grad_norm,
)


def _parameters(*shapes):
    return [Tensor(np.ones(shape), requires_grad=True) for shape in shapes]


def _optimizer(lr=0.1):
    return Adam(_parameters((3, 3)), lr=lr)


class TestStepLR:
    def test_rate_constant_within_a_step(self):
        scheduler = StepLR(_optimizer(lr=1.0), step_size=3, gamma=0.1)
        rates = [scheduler.step() for _ in range(3)]
        assert rates[0] == rates[1] == 1.0
        assert rates[2] == pytest.approx(0.1)

    def test_rate_decays_by_gamma_per_step(self):
        scheduler = StepLR(_optimizer(lr=2.0), step_size=1, gamma=0.5)
        assert scheduler.step() == pytest.approx(1.0)
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.current_lr == pytest.approx(0.5)

    def test_updates_the_optimizer_in_place(self):
        optimizer = _optimizer(lr=1.0)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_optimizer(), step_size=1, gamma=0.0)
        with pytest.raises(ValueError):
            StepLR(object(), step_size=1)  # type: ignore[arg-type]


class TestExponentialLR:
    def test_geometric_decay(self):
        scheduler = ExponentialLR(_optimizer(lr=1.0), gamma=0.5)
        rates = [scheduler.step() for _ in range(3)]
        np.testing.assert_allclose(rates, [0.5, 0.25, 0.125])

    def test_gamma_one_keeps_the_rate(self):
        scheduler = ExponentialLR(_optimizer(lr=0.3), gamma=1.0)
        assert scheduler.step() == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialLR(_optimizer(), gamma=1.5)


class TestCosineAnnealingLR:
    def test_reaches_min_lr_at_the_end(self):
        scheduler = CosineAnnealingLR(_optimizer(lr=1.0), total_epochs=10,
                                      min_lr=0.05)
        rates = [scheduler.step() for _ in range(10)]
        assert rates[-1] == pytest.approx(0.05)
        assert all(np.diff(rates) < 0)

    def test_rate_stays_at_min_after_the_horizon(self):
        scheduler = CosineAnnealingLR(_optimizer(lr=1.0), total_epochs=4)
        for _ in range(6):
            rate = scheduler.step()
        assert rate == pytest.approx(0.0)

    def test_halfway_point_is_midway(self):
        scheduler = CosineAnnealingLR(_optimizer(lr=2.0), total_epochs=2)
        assert scheduler.step() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(), total_epochs=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(_optimizer(lr=0.1), total_epochs=5, min_lr=1.0)


class TestLinearWarmupLR:
    def test_starts_below_the_base_rate(self):
        optimizer = _optimizer(lr=1.0)
        LinearWarmupLR(optimizer, warmup_epochs=5, start_factor=0.2)
        assert optimizer.lr == pytest.approx(0.2)

    def test_reaches_the_base_rate_after_warmup(self):
        scheduler = LinearWarmupLR(_optimizer(lr=1.0), warmup_epochs=4,
                                   start_factor=0.2)
        rates = [scheduler.step() for _ in range(6)]
        assert rates[3] == pytest.approx(1.0)
        assert rates[5] == pytest.approx(1.0)
        assert all(np.diff(rates) >= -1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearWarmupLR(_optimizer(), warmup_epochs=0)
        with pytest.raises(ValueError):
            LinearWarmupLR(_optimizer(), warmup_epochs=3, start_factor=0.0)

    @settings(max_examples=20, deadline=None)
    @given(warmup=st.integers(min_value=1, max_value=20),
           factor=st.floats(min_value=0.01, max_value=1.0))
    def test_rates_never_exceed_the_base_rate(self, warmup, factor):
        scheduler = LinearWarmupLR(_optimizer(lr=1.0), warmup_epochs=warmup,
                                   start_factor=factor)
        for _ in range(warmup + 3):
            assert scheduler.step() <= 1.0 + 1e-12


class TestSchedulerWithSGD:
    def test_scheduler_drives_actual_updates(self):
        """A decayed rate produces a smaller parameter update."""
        parameter = Tensor(np.zeros(4), requires_grad=True)
        optimizer = SGD([parameter], lr=1.0)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.1)

        parameter.grad = np.ones(4)
        optimizer.step()
        first_move = -parameter.data.copy()

        scheduler.step()
        parameter.grad = np.ones(4)
        before = parameter.data.copy()
        optimizer.step()
        second_move = before - parameter.data
        assert np.all(second_move < first_move)


class TestGradientClipping:
    def test_global_norm_of_known_gradients(self):
        parameters = _parameters((2,), (2,))
        parameters[0].grad = np.array([3.0, 0.0])
        parameters[1].grad = np.array([0.0, 4.0])
        assert global_grad_norm(parameters) == pytest.approx(5.0)

    def test_norm_ignores_missing_gradients(self):
        parameters = _parameters((2,), (2,))
        parameters[0].grad = np.array([3.0, 4.0])
        assert global_grad_norm(parameters) == pytest.approx(5.0)

    def test_norm_zero_when_no_gradients(self):
        assert global_grad_norm(_parameters((3,))) == 0.0

    def test_clip_norm_rescales_when_above_threshold(self):
        parameters = _parameters((2,))
        parameters[0].grad = np.array([6.0, 8.0])
        returned = clip_grad_norm(parameters, max_norm=5.0)
        assert returned == pytest.approx(10.0)
        assert global_grad_norm(parameters) == pytest.approx(5.0)
        np.testing.assert_allclose(parameters[0].grad, [3.0, 4.0])

    def test_clip_norm_leaves_small_gradients_untouched(self):
        parameters = _parameters((2,))
        parameters[0].grad = np.array([0.3, 0.4])
        clip_grad_norm(parameters, max_norm=5.0)
        np.testing.assert_allclose(parameters[0].grad, [0.3, 0.4])

    def test_clip_value_clamps_entries(self):
        parameters = _parameters((3,))
        parameters[0].grad = np.array([-10.0, 0.5, 10.0])
        clip_grad_value(parameters, max_value=1.0)
        np.testing.assert_allclose(parameters[0].grad, [-1.0, 0.5, 1.0])

    def test_validation(self):
        parameters = _parameters((2,))
        with pytest.raises(ValueError):
            clip_grad_norm(parameters, max_norm=0.0)
        with pytest.raises(ValueError):
            clip_grad_value(parameters, max_value=-1.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10000),
           max_norm=st.floats(min_value=0.1, max_value=10.0))
    def test_clipped_norm_never_exceeds_the_bound(self, seed, max_norm):
        rng = np.random.default_rng(seed)
        parameters = _parameters((4,), (2, 3))
        for parameter in parameters:
            parameter.grad = rng.normal(0, 5, size=parameter.shape)
        clip_grad_norm(parameters, max_norm=max_norm)
        assert global_grad_norm(parameters) <= max_norm * (1 + 1e-9)
