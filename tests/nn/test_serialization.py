"""State-dict archives: dtype-exact round-trips and key-escape safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.serialization import load_state_dict, save_state_dict


class TestKeyRoundtrip:
    def test_dotted_keys_round_trip(self, tmp_path):
        state = {"generator.down.0.weight": np.arange(4, dtype=np.float32),
                 "buffer:generator.bn.running_mean": np.ones(2),
                 "plain": np.zeros(1)}
        path = tmp_path / "state.npz"
        save_state_dict(state, path)
        restored = load_state_dict(path)
        assert set(restored) == set(state)
        for key, value in state.items():
            assert restored[key].dtype == value.dtype
            np.testing.assert_array_equal(restored[key], value)

    def test_escape_collision_raises_on_save(self, tmp_path):
        """Regression: a key containing the literal ``__dot__`` sentinel
        used to round-trip to the wrong name (``a__dot__b`` -> ``a.b``)."""
        state = {"a__dot__b": np.zeros(1)}
        with pytest.raises(ValueError, match="__dot__"):
            save_state_dict(state, tmp_path / "state.npz")

    def test_escape_collision_in_dotted_key_raises(self, tmp_path):
        state = {"layer.weird__dot__name.weight": np.zeros(1)}
        with pytest.raises(ValueError, match="round-trip"):
            save_state_dict(state, tmp_path / "state.npz")
