"""Tests for the autograd Tensor: forward values and gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad
from repro.nn.tensor import concatenate, stack, is_grad_enabled

from tests.nn.conftest import numerical_gradient


def _tensor(rng, shape, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestTensorBasics:
    def test_integer_data_promoted_to_float(self):
        tensor = Tensor([1, 2, 3])
        assert tensor.dtype.kind == "f"

    def test_shape_ndim_size(self):
        tensor = Tensor(np.zeros((2, 3, 4)))
        assert tensor.shape == (2, 3, 4)
        assert tensor.ndim == 3
        assert tensor.size == 24

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_ensure_wraps_raw_values(self):
        assert isinstance(Tensor.ensure(2.0), Tensor)
        tensor = Tensor([1.0])
        assert Tensor.ensure(tensor) is tensor

    def test_zeros_ones_randn_factories(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)
        generator = np.random.default_rng(0)
        sample = Tensor.randn(3, 4, rng=generator)
        assert sample.shape == (3, 4)

    def test_backward_requires_grad(self):
        tensor = Tensor([1.0])
        with pytest.raises(RuntimeError):
            tensor.backward()

    def test_backward_requires_scalar_or_grad(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (tensor * 2).backward()

    def test_no_grad_disables_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = tensor * 3.0
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_gradient_accumulates_across_backward_calls(self):
        tensor = Tensor([2.0], requires_grad=True)
        (tensor * 3.0).sum().backward()
        (tensor * 3.0).sum().backward()
        assert tensor.grad == pytest.approx(np.array([6.0]))

    def test_zero_grad(self):
        tensor = Tensor([2.0], requires_grad=True)
        (tensor * 3.0).sum().backward()
        tensor.zero_grad()
        assert tensor.grad is None


class TestArithmeticForward:
    def test_add_sub_mul_div_values(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4)) + 2.0
        ta, tb = Tensor(a), Tensor(b)
        np.testing.assert_allclose((ta + tb).data, a + b)
        np.testing.assert_allclose((ta - tb).data, a - b)
        np.testing.assert_allclose((ta * tb).data, a * b)
        np.testing.assert_allclose((ta / tb).data, a / b)

    def test_scalar_operand_promotion(self):
        tensor = Tensor([1.0, 2.0])
        np.testing.assert_allclose((2.0 + tensor).data, [3.0, 4.0])
        np.testing.assert_allclose((2.0 - tensor).data, [1.0, 0.0])
        np.testing.assert_allclose((2.0 * tensor).data, [2.0, 4.0])
        np.testing.assert_allclose((2.0 / tensor).data, [2.0, 1.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([1.0, 2.0])

    def test_matmul_value(self, rng):
        a = rng.standard_normal((3, 5))
        b = rng.standard_normal((5, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestGradients:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_binary_op_gradients(self, rng, op):
        a = _tensor(rng, (3, 4))
        b = Tensor(rng.standard_normal((3, 4)) + 3.0, requires_grad=True)
        ops = {
            "add": lambda x, y: x + y,
            "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y,
            "div": lambda x, y: x / y,
        }
        out = ops[op](a, b)
        (out * out).sum().backward()

        def forward():
            result = ops[op](Tensor(a.data), Tensor(b.data))
            return float((result.data ** 2).sum())

        np.testing.assert_allclose(a.grad, numerical_gradient(forward, a.data),
                                   atol=1e-5)
        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)

    def test_broadcast_add_gradient(self, rng):
        a = _tensor(rng, (4, 3))
        b = _tensor(rng, (3,))
        ((a + b) ** 2).sum().backward()

        def forward():
            return float(((a.data + b.data) ** 2).sum())

        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)

    def test_broadcast_mul_gradient_keepdims(self, rng):
        a = _tensor(rng, (2, 3, 4))
        b = _tensor(rng, (1, 3, 1))
        ((a * b) ** 2).sum().backward()

        def forward():
            return float(((a.data * b.data) ** 2).sum())

        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)

    @pytest.mark.parametrize("method,kwargs", [
        ("exp", {}),
        ("tanh", {}),
        ("sigmoid", {}),
        ("relu", {}),
        ("leaky_relu", {"negative_slope": 0.2}),
        ("abs", {}),
    ])
    def test_unary_gradients(self, rng, method, kwargs):
        tensor = _tensor(rng, (3, 5))
        # Shift away from the non-differentiable point of relu/abs.
        tensor.data += np.sign(tensor.data) * 0.05
        out = getattr(tensor, method)(**kwargs)
        (out * out).sum().backward()

        def forward():
            result = getattr(Tensor(tensor.data), method)(**kwargs)
            return float((result.data ** 2).sum())

        np.testing.assert_allclose(tensor.grad,
                                   numerical_gradient(forward, tensor.data),
                                   atol=1e-4)

    def test_log_gradient(self, rng):
        tensor = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)
        tensor.log().sum().backward()
        np.testing.assert_allclose(tensor.grad, 1.0 / tensor.data, atol=1e-8)

    def test_pow_gradient(self, rng):
        tensor = Tensor(rng.random((4,)) + 1.0, requires_grad=True)
        (tensor ** 3).sum().backward()
        np.testing.assert_allclose(tensor.grad, 3 * tensor.data ** 2, atol=1e-8)

    def test_sqrt_gradient(self, rng):
        tensor = Tensor(rng.random((4,)) + 1.0, requires_grad=True)
        tensor.sqrt().sum().backward()
        np.testing.assert_allclose(tensor.grad, 0.5 / np.sqrt(tensor.data),
                                   atol=1e-8)

    def test_clip_gradient_masks_out_of_range(self):
        tensor = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        tensor.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(tensor.grad, [0.0, 1.0, 0.0])

    @pytest.mark.parametrize("axis,keepdims", [
        (None, False), (0, False), (1, True), ((0, 2), False),
    ])
    def test_sum_gradient(self, rng, axis, keepdims):
        tensor = _tensor(rng, (2, 3, 4))
        out = tensor.sum(axis=axis, keepdims=keepdims)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(tensor.grad, np.ones_like(tensor.data))

    def test_mean_gradient(self, rng):
        tensor = _tensor(rng, (2, 5))
        tensor.mean().backward()
        np.testing.assert_allclose(tensor.grad,
                                   np.full(tensor.shape, 1.0 / tensor.size))

    def test_var_matches_numpy(self, rng):
        tensor = Tensor(rng.standard_normal((4, 6)))
        np.testing.assert_allclose(tensor.var(axis=0).data,
                                   tensor.data.var(axis=0), atol=1e-10)

    def test_max_gradient_splits_ties(self):
        tensor = Tensor([[1.0, 3.0, 3.0]], requires_grad=True)
        tensor.max(axis=1).sum().backward()
        np.testing.assert_allclose(tensor.grad, [[0.0, 0.5, 0.5]])

    def test_matmul_gradient(self, rng):
        a = _tensor(rng, (3, 5))
        b = _tensor(rng, (5, 2))
        ((a @ b) ** 2).sum().backward()

        def forward():
            return float(((a.data @ b.data) ** 2).sum())

        np.testing.assert_allclose(a.grad, numerical_gradient(forward, a.data),
                                   atol=1e-5)
        np.testing.assert_allclose(b.grad, numerical_gradient(forward, b.data),
                                   atol=1e-5)

    def test_reused_tensor_accumulates_gradient(self, rng):
        tensor = _tensor(rng, (3,))
        out = tensor * 2.0 + tensor * 3.0
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.full(3, 5.0))


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        tensor = _tensor(rng, (2, 6))
        tensor.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((2, 6)))

    def test_reshape_accepts_tuple(self, rng):
        tensor = Tensor(rng.standard_normal((2, 6)))
        assert tensor.reshape((4, 3)).shape == (4, 3)

    def test_transpose_gradient(self, rng):
        tensor = _tensor(rng, (2, 3, 4))
        tensor.transpose(2, 0, 1).sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((2, 3, 4)))

    def test_default_transpose_reverses_axes(self, rng):
        tensor = Tensor(rng.standard_normal((2, 3, 4)))
        assert tensor.transpose().shape == (4, 3, 2)

    def test_getitem_gradient_scatter(self, rng):
        tensor = _tensor(rng, (4, 3))
        tensor[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)

    def test_pad2d_gradient(self, rng):
        tensor = _tensor(rng, (1, 1, 3, 3))
        padded = tensor.pad2d(2)
        assert padded.shape == (1, 1, 7, 7)
        padded.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones((1, 1, 3, 3)))

    def test_pad2d_zero_is_identity(self, rng):
        tensor = Tensor(rng.standard_normal((1, 1, 3, 3)))
        assert tensor.pad2d(0) is tensor

    def test_concatenate_forward_and_gradient(self, rng):
        a = _tensor(rng, (2, 3))
        b = _tensor(rng, (2, 5))
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 8)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 5), 2.0))

    def test_stack_forward_and_gradient(self, rng):
        a = _tensor(rng, (2, 3))
        b = _tensor(rng, (2, 3))
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))


class TestPropertyBased:
    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3,
                                                   min_side=1, max_side=5),
                      elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_add_commutative(self, array):
        a = Tensor(array)
        b = Tensor(array[::-1].copy().reshape(array.shape))
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_numpy(self, array):
        np.testing.assert_allclose(Tensor(array).sum().data, array.sum(),
                                   atol=1e-9)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)),
                      elements=st.floats(-3, 3)))
    @settings(max_examples=50, deadline=None)
    def test_tanh_bounded(self, array):
        out = Tensor(array).tanh().data
        assert np.all(out <= 1.0) and np.all(out >= -1.0)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5),),
                      elements=st.floats(-50, 50)))
    @settings(max_examples=50, deadline=None)
    def test_sigmoid_in_unit_interval(self, array):
        out = Tensor(array).sigmoid().data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent(self, rows, cols):
        generator = np.random.default_rng(rows * 7 + cols)
        tensor = Tensor(generator.standard_normal((rows, cols)))
        once = tensor.relu().data
        twice = Tensor(once).relu().data
        np.testing.assert_allclose(once, twice)
