"""Tests for the autograd-aware lazy tape (fused training kernels).

The training tape's contract is the same bit-identity bar the inference
lazy graph already meets, extended through backward: recording forward
elementwise chains under gradients (conv-bias → train-mode BatchNorm
affine → activation) and lowering backward through the fused kernels
(``fused_elementwise_bwd``, ``bn_bwd_dx``, the fused bias/affine grad
reductions) must leave **bit-identical weights** after full optimizer
steps versus the eager path — on every architecture, dtype and backend.
These tests pin that end to end (two Adam steps per architecture ×
float32/float64 × numpy/cjit), per kernel (numpy-vs-cjit backward
conformance), and for the recording semantics: unfusable ops fall back
silently with exact gradients, and nested ``lazy_eval`` / ``no_grad``
scopes pick the right recording mode (the GAN's frozen-discriminator
phase).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import ModelConfig, Trainer, build_model
from repro.data import generate_paired_dataset
from repro.flash import BlockGeometry, FlashChannel
from repro.nn import Tensor, no_grad, use_backend
from repro.nn import functional as F
from repro.nn import lazy
from repro.nn.backend import NumpyBackend
from repro.nn.cjit import CJitBackend, cjit_available
from repro.nn.layers import BatchNorm2d

needs_compiler = pytest.mark.skipif(
    not cjit_available(), reason="no C compiler (cc/clang/gcc) on PATH")

ARCHITECTURES = ["cvae_gan", "cgan", "cvae", "bicycle_gan"]
DTYPES = ["float32", "float64"]


@pytest.fixture(scope="module")
def dataset():
    simulator = FlashChannel(geometry=BlockGeometry(16, 16),
                             rng=np.random.default_rng(5))
    return generate_paired_dataset(simulator, pe_cycles=(4000.0, 10000.0),
                                   arrays_per_pe=8, array_size=8)


def _train_weights(arch, dtype, dataset, backend, lazy_on,
                   steps: int = 2) -> dict[str, np.ndarray]:
    """Weights after ``steps`` optimizer steps under the given policy."""
    with use_backend(backend):
        config = replace(ModelConfig.tiny(), dtype=dtype)
        model = build_model(arch, config, rng=np.random.default_rng(21))
        trainer = Trainer(model, dataset, rng=np.random.default_rng(22),
                          lazy=lazy_on)
        batch = dataset[0:4]
        for _ in range(steps):
            trainer.train_step(*batch)
        return {key: value.copy()
                for key, value in model.state_dict().items()}


class TestTrainStepBitIdentity:
    """Tape-mode training must equal eager training bit for bit."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_numpy_backend(self, arch, dtype, dataset):
        eager = _train_weights(arch, dtype, dataset, "numpy", lazy_on=False)
        taped = _train_weights(arch, dtype, dataset, "numpy", lazy_on=True)
        assert eager.keys() == taped.keys()
        for key in eager:
            np.testing.assert_array_equal(taped[key], eager[key],
                                          err_msg=key)

    @needs_compiler
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_cjit_backend(self, arch, dtype, dataset, cjit_backend):
        eager = _train_weights(arch, dtype, dataset, "numpy", lazy_on=False)
        taped = _train_weights(arch, dtype, dataset, cjit_backend,
                               lazy_on=True)
        assert eager.keys() == taped.keys()
        for key in eager:
            np.testing.assert_array_equal(taped[key], eager[key],
                                          err_msg=key)

    def test_tape_populates_training_counters(self, dataset):
        backend = NumpyBackend()
        _train_weights("cvae_gan", "float32", dataset, backend, lazy_on=True)
        stats = backend.fusion_stats()
        assert stats["train_fwd_chains"] > 0
        assert stats["train_fwd_stages"] >= stats["train_fwd_chains"]
        assert stats["train_bwd_kernels"] > 0
        assert backend.arena.stats()["peak_bytes"] > 0

    def test_eager_training_records_no_forward_chains(self, dataset):
        backend = NumpyBackend()
        _train_weights("cvae", "float32", dataset, backend, lazy_on=False)
        stats = backend.fusion_stats()
        # No tape: nothing fuses forward.  (``train_bwd_kernels`` may
        # still count — the train-mode BatchNorm closed-form backward
        # routes through ``bn_bwd_dx`` on the eager path too.)
        assert stats["train_fwd_chains"] == 0
        assert stats["train_fwd_stages"] == 0


def _micro_step(backend, lazy_on, dtype, unfusable=False):
    """Gradients of a conv → BN(train) → leaky-ReLU micro-graph."""
    rng = np.random.default_rng(7)
    x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(dtype),
               requires_grad=True)
    w = Tensor((rng.standard_normal((4, 3, 3, 3)) * 0.1).astype(dtype),
               requires_grad=True)
    b = Tensor(rng.standard_normal(4).astype(dtype), requires_grad=True)
    mix = Tensor(rng.standard_normal((2, 4, 8, 8)).astype(dtype),
                 requires_grad=True)
    norm = BatchNorm2d(4).to(np.dtype(dtype))
    with use_backend(backend), lazy.lazy_eval(lazy_on):
        h = F.conv2d(x, w, b, stride=1, padding=1)
        h = norm(h).leaky_relu(0.2)
        if unfusable:
            # Tensor-tensor multiply is not a recordable tape stage: the
            # chain must realize silently and continue on the eager graph.
            h = h * mix
        (h * h).mean().backward()
    return {"x": x.grad, "w": w.grad, "b": b.grad, "mix": mix.grad,
            "bn_w": norm.weight.grad, "bn_b": norm.bias.grad}


class TestFallbackSemantics:
    """Unfusable ops under grad fall back silently, gradients exact."""

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_unfusable_op_matches_eager_gradients(self, dtype):
        backend = NumpyBackend()
        eager = _micro_step(backend, lazy_on=False, dtype=dtype,
                            unfusable=True)
        taped = _micro_step(backend, lazy_on=True, dtype=dtype,
                            unfusable=True)
        for key, want in eager.items():
            np.testing.assert_array_equal(taped[key], want, err_msg=key)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_fused_chain_matches_eager_gradients(self, dtype):
        backend = NumpyBackend()
        eager = _micro_step(backend, lazy_on=False, dtype=dtype)
        taped = _micro_step(backend, lazy_on=True, dtype=dtype)
        for key, want in eager.items():
            if want is None:
                assert taped[key] is None
                continue
            np.testing.assert_array_equal(taped[key], want, err_msg=key)

    def test_scalar_losses_do_not_tape(self):
        # 0-d arithmetic (loss preambles like ``(a + b) * 0.5``) must stay
        # eager: a one-element fused kernel buys nothing and compiled
        # backends reject scalar chain bases.
        a = Tensor(np.float64(2.0).reshape(()), requires_grad=True)
        with lazy.lazy_eval():
            out = (a * 0.5) + 1.0
            assert out._lazy is None
        out.backward()
        assert float(a.grad) == 0.5


class TestNestedRecordingModes:
    """lazy_eval nested with no_grad picks the right recording mode.

    This is the GAN's frozen-discriminator phase: the generator step runs
    under the training tape, while discriminator-frozen forward passes
    inside ``no_grad`` must record plain graph-free lazy nodes (and
    fully-eager scopes must record nothing).
    """

    def test_frozen_phase_inside_tape_scope(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                   requires_grad=True)
        w = Tensor((rng.standard_normal((4, 3, 3, 3)) * 0.1)
                   .astype(np.float32), requires_grad=True)
        b = Tensor(rng.standard_normal(4).astype(np.float32),
                   requires_grad=True)
        w_frozen = Tensor((rng.standard_normal((2, 4, 3, 3)) * 0.1)
                          .astype(np.float32))
        with lazy.lazy_eval():
            h = F.conv2d(x, w, b, stride=1, padding=1).leaky_relu(0.2)
            # Tape child: lazy chain *and* differentiable.
            assert h._lazy is not None and h.requires_grad
            with no_grad():
                frozen = F.conv2d(Tensor(h.data), w_frozen, stride=1,
                                  padding=1)
                # Graph-free lazy node: recorded, not differentiable.
                assert frozen._lazy is not None
                assert not frozen.requires_grad
                with lazy.lazy_eval(False):
                    eager = F.conv2d(Tensor(h.data), w_frozen, stride=1,
                                     padding=1)
                    assert eager._lazy is None
                np.testing.assert_array_equal(frozen.data, eager.data)
            # Back in the tape scope: recording resumes.
            h2 = h.leaky_relu(0.2)
            assert h2._lazy is not None and h2.requires_grad
            (h2 * h2).mean().backward()
        assert x.grad is not None and w.grad is not None
        assert b.grad is not None

    def test_frozen_phase_gradients_match_eager(self):
        def run(lazy_on):
            rng = np.random.default_rng(13)
            x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32),
                       requires_grad=True)
            w = Tensor((rng.standard_normal((4, 3, 3, 3)) * 0.1)
                       .astype(np.float32), requires_grad=True)
            w_frozen = Tensor((rng.standard_normal((4, 4, 3, 3)) * 0.1)
                              .astype(np.float32))
            with lazy.lazy_eval(lazy_on):
                h = F.conv2d(x, w, stride=1, padding=1).leaky_relu(0.2)
                with no_grad():
                    shift = F.conv2d(Tensor(h.data), w_frozen, stride=1,
                                     padding=1).tanh().data
                out = (h + 1.0) * 0.5
                (out * out).mean().backward()
            return x.grad.copy(), w.grad.copy(), shift.copy()

        eager = run(False)
        taped = run(True)
        for got, want in zip(taped, eager):
            np.testing.assert_array_equal(got, want)


class TestFusedBackwardConformance:
    """Compiled backward kernels must equal the NumPy lowering bitwise."""

    STAGE_RUNS = (
        [("leaky_relu", 0.2)],
        [("leaky_relu", 0.0)],
        [("relu",)],
        [("tanh",)],
        [("sigmoid",)],
        [("neg",)],
        [("mul_scalar", 0.5)],
        [("div_scalar", 3.0)],
        [("add_scalar", 1.5)],
        [("mul_scalar", 0.5), ("add_scalar", 1.0), ("leaky_relu", 0.2),
         ("neg",)],
    )

    @needs_compiler
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_fused_elementwise_bwd_matches_numpy(self, dtype, cjit_backend):
        rng = np.random.default_rng(3)
        reference = NumpyBackend()
        grad = rng.standard_normal((2, 3, 8, 8)).astype(dtype)
        output = np.tanh(rng.standard_normal((2, 3, 8, 8))).astype(dtype)
        for stages in self.STAGE_RUNS:
            want = reference.fused_elementwise_bwd(grad.copy(), stages,
                                                   output)
            got = cjit_backend.fused_elementwise_bwd(grad.copy(), stages,
                                                     output)
            assert got.dtype == want.dtype
            np.testing.assert_array_equal(got, want, err_msg=str(stages))

    @needs_compiler
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bn_bwd_dx_matches_numpy(self, dtype, cjit_backend):
        rng = np.random.default_rng(4)
        reference = NumpyBackend()
        grad = rng.standard_normal((2, 5, 6, 6)).astype(dtype)
        x = rng.standard_normal((2, 5, 6, 6)).astype(dtype)
        s1 = rng.standard_normal(5).astype(dtype)
        s2 = rng.standard_normal(5).astype(dtype)
        s3 = rng.standard_normal(5).astype(dtype)
        want = reference.bn_bwd_dx(grad, x, s1, s2, s3)
        got = cjit_backend.bn_bwd_dx(grad, x, s1, s2, s3)
        np.testing.assert_array_equal(got, want)

    @needs_compiler
    def test_unknown_stage_kind_falls_back(self, cjit_backend):
        # A run containing a kind outside the renderable table must route
        # through the inherited sequential lowering, not a compile error.
        grad = np.ones((2, 2), dtype=np.float32)
        stages = [("mul_scalar", 2.0), ("cast", np.dtype(np.float32))]
        with pytest.raises(ValueError):
            # The NumPy reference rejects non-multiplier kinds; the cjit
            # override must surface the same error, not a kernel failure.
            cjit_backend.fused_elementwise_bwd(grad, stages, grad)

    def test_numpy_inplace_reuses_owned_gradient(self):
        backend = NumpyBackend()
        grad = np.full((4,), 2.0, dtype=np.float32)
        out = backend.fused_elementwise_bwd(grad, [("mul_scalar", 3.0)],
                                            None, inplace=True)
        assert out is grad
        np.testing.assert_array_equal(out, np.full((4,), 6.0,
                                                   dtype=np.float32))


class TestArenaPeakTracking:
    def test_peak_bytes_high_water_and_reset(self):
        backend = NumpyBackend()
        stats = backend.arena.stats()
        assert stats["peak_bytes"] == 0
        backend.scratch_out((64, 64), np.float32)
        peak = backend.arena.stats()["peak_bytes"]
        assert peak >= 64 * 64 * 4
        # Same-key reuse does not raise the peak.
        backend.scratch_out((64, 64), np.float32)
        assert backend.arena.stats()["peak_bytes"] == peak
        backend.arena.reset_peak()
        # The live pool still counts: peak restarts from resident bytes.
        assert backend.arena.stats()["peak_bytes"] == \
            backend.arena.stats()["bytes"]


class TestStatsCLI:
    def test_cli_stats_reports_training_counters(self, capsys, tmp_path,
                                                 monkeypatch):
        from repro.artifacts.kernels import KERNEL_CACHE_ENV
        from repro.nn import backend as backend_mod

        monkeypatch.setenv(KERNEL_CACHE_ENV, str(tmp_path))
        assert backend_mod.main(["--stats"]) == 0
        out = capsys.readouterr().out
        assert "numpy train fusion stats:" in out
        assert "train_fwd_chains=" in out
        assert "train_bwd_kernels=" in out
        assert "arena_peak_bytes=" in out
        if cjit_available():
            assert "cjit train fusion stats:" in out
