"""The unified metrics registry: types, merge semantics, scoping."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics


class TestMetricTypes:
    def test_counter_accumulates_and_merges_by_addition(self):
        registry = metrics.MetricsRegistry()
        registry.inc("calls")
        registry.inc("calls", 4)
        assert registry.counter("calls").value == 5
        registry.merge_snapshot({"calls": {"type": "counter", "value": 7}})
        assert registry.counter("calls").value == 12

    def test_gauge_merges_by_max(self):
        registry = metrics.MetricsRegistry()
        registry.gauge("peak").set(100)
        registry.merge_snapshot({"peak": {"type": "gauge", "value": 40}})
        assert registry.gauge("peak").value == 100  # high-water mark kept
        registry.merge_snapshot({"peak": {"type": "gauge", "value": 250}})
        assert registry.gauge("peak").value == 250

    def test_histogram_combines_count_total_min_max(self):
        registry = metrics.MetricsRegistry()
        registry.observe("lat", 0.5)
        registry.observe("lat", 1.5)
        other = metrics.MetricsRegistry()
        other.observe("lat", 0.1)
        registry.merge_snapshot(other.snapshot())
        hist = registry.histogram("lat")
        assert hist.count == 3
        assert hist.total == pytest.approx(2.1)
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(1.5)
        assert hist.mean == pytest.approx(0.7)

    def test_name_reuse_across_types_is_an_error(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("x")

    def test_snapshot_is_plain_and_json_safe(self):
        import json

        registry = metrics.MetricsRegistry()
        registry.inc("a")
        registry.gauge("b").set(3)
        registry.observe("c", 0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_totals_flat_view(self):
        registry = metrics.MetricsRegistry()
        registry.inc("a", 2)
        registry.gauge("b").set(9)
        registry.observe("c", 0.5)
        registry.observe("c", 0.25)
        assert registry.totals() == {"a": 2, "b": 9, "c": 0.75}


class TestScoping:
    def test_thread_local_override_shadows_process_registry(self):
        shard = metrics.MetricsRegistry()
        with metrics.use_registry(shard):
            assert metrics.get_registry() is shard
            metrics.get_registry().inc("seen")
        assert metrics.get_registry() is metrics.process_registry()
        assert shard.counter("seen").value == 1

    def test_override_is_per_thread(self):
        shard = metrics.MetricsRegistry()
        seen_in_thread = []

        def probe():
            seen_in_thread.append(metrics.get_registry())

        with metrics.use_registry(shard):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen_in_thread == [metrics.process_registry()]


class TestLegacySurfaceBridges:
    def test_cache_registry_publishes_condition_cache_stats(self):
        from repro.channel.cache import ConditionCache

        cache = ConditionCache(maxsize=4)
        cache.get_or_compute(("k",), lambda: 1)
        cache.get_or_compute(("k",), lambda: 1)
        registry = metrics.cache_registry(cache)
        totals = registry.totals()
        assert totals["channel.cache.hits"] == 1
        assert totals["channel.cache.misses"] == 1
        assert totals["channel.cache.size"] == 1

    def test_publish_metrics_lands_in_active_registry(self):
        from repro.channel.cache import ConditionCache

        cache = ConditionCache(maxsize=4)
        cache.get_or_compute(("k",), lambda: 1)
        shard = metrics.MetricsRegistry()
        with metrics.use_registry(shard):
            cache.publish_metrics()
        assert shard.totals()["channel.cache.misses"] == 1

    def test_backend_registry_mirrors_fusion_stats(self):
        pytest.importorskip("numpy")
        from repro.nn.backend import ArrayBackend

        backend = ArrayBackend()
        snapshot = metrics.backend_registry(backend).snapshot()
        for key, value in backend.fusion_stats().items():
            assert snapshot[f"nn.fusion.{key}"]["value"] == value
