"""Trace files end-to-end: sink, schema validation, summary, CLI export."""

from __future__ import annotations

import json

import pytest

from repro.obs import cli, report, sink, trace


@pytest.fixture(autouse=True)
def _clean_process_registry():
    """The process registry is a real singleton; keep tests independent."""
    from repro.obs import metrics

    metrics.process_registry().reset()
    yield
    metrics.process_registry().reset()


def _make_trace(path):
    """A small real trace: nested spans, a scheduler event, kernel metrics."""
    with trace.tracing(str(path), trace_id="t-test") as tracer:
        with trace.span("exec.plan", units=4):
            with trace.span("exec.shard", shard=0, start=0, units=2):
                pass
            with trace.span("exec.shard", shard=1, start=2, units=2):
                pass
            trace.event("exec.retry", shard=1, attempt=1)
        from repro.obs import metrics

        metrics.get_registry().observe("nn.kernel.matmul", 0.25)
        metrics.get_registry().observe("nn.kernel.matmul", 0.75)
        tracer.adopt([{"type": "span", "trace": "t-test", "span": "x-9",
                       "parent": None, "name": "exec.shard", "t0": 1.0,
                       "dur": 0.5, "pid": 999, "tid": 1,
                       "attrs": {"shard": 1, "units": 2}}], abandoned=True)
    return path


@pytest.fixture
def trace_file(tmp_path):
    return _make_trace(tmp_path / "run.jsonl")


class TestSinkAndSchema:
    def test_trace_file_validates_clean(self, trace_file):
        count, errors = sink.validate_trace(trace_file)
        assert errors == []
        assert count >= 5  # meta + 3 spans + event + metrics + adopted

    def test_corrupted_line_fails_validation(self, trace_file):
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps({"type": "span", "trace": "t"}) + "\n")
        count, errors = sink.validate_trace(trace_file)
        assert any("invalid JSON" in error for error in errors)
        assert any("missing field" in error for error in errors)

    def test_unknown_record_type_rejected(self):
        assert sink.validate_record({"type": "mystery"}) \
            == ["unknown record type 'mystery'"]


class TestSummarize:
    def test_phase_breakdown_and_timeline(self, trace_file):
        summary = report.summarize(sink.read_trace(trace_file))
        assert summary["trace"] == "t-test"
        assert summary["spans"]["exec.plan"]["count"] == 1
        assert summary["spans"]["exec.shard"]["count"] == 3
        assert summary["spans"]["exec.shard"]["abandoned"] == 1
        timeline = summary["shards"]
        assert [entry["abandoned"] for entry in timeline].count(True) == 1
        assert summary["events"] == {"exec.retry": 1}
        assert summary["kernels"][0]["kernel"] == "matmul"
        assert summary["kernels"][0]["calls"] == 2

    def test_format_summary_mentions_the_load_bearing_facts(self, trace_file):
        text = report.format_summary(
            report.summarize(sink.read_trace(trace_file)))
        assert "exec.plan" in text
        assert "[abandoned]" in text
        assert "exec.retry=1" in text
        assert "matmul" in text

    def test_trace_summary_block_is_compact_and_json_safe(self, trace_file):
        block = report.trace_summary_block(sink.read_trace(trace_file))
        assert json.loads(json.dumps(block)) == block
        assert block["phases"]["exec.shard"]["count"] == 3
        assert "event_detail" not in block


class TestChromeExport:
    def test_export_loads_and_spans_are_complete_events(self, trace_file):
        exported = report.chrome_trace(sink.read_trace(trace_file))
        assert json.loads(json.dumps(exported)) == exported
        phases = {event["ph"] for event in exported["traceEvents"]}
        assert phases == {"X", "i"}
        abandoned = [event for event in exported["traceEvents"]
                     if event.get("cat") == "abandoned"]
        assert len(abandoned) == 1
        for event in exported["traceEvents"]:
            assert event["ts"] >= 0  # all times relative to the origin


class TestCli:
    def test_summarize_human_and_json(self, trace_file, capsys):
        assert cli.main(["summarize", str(trace_file)]) == 0
        human = capsys.readouterr().out
        assert "shard timeline" in human
        assert cli.main(["summarize", str(trace_file), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["trace"] == "t-test"
        assert "event_detail" not in summary

    def test_chrome_writes_file(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert cli.main(["chrome", str(trace_file), "-o", str(out)]) == 0
        exported = json.loads(out.read_text())
        assert exported["traceEvents"]

    def test_validate_ok_and_failure(self, trace_file, capsys):
        assert cli.main(["validate", str(trace_file)]) == 0
        assert "schema ok" in capsys.readouterr().out
        with open(trace_file, "a", encoding="utf-8") as handle:
            handle.write("{broken\n")
        assert cli.main(["validate", str(trace_file)]) == 1
        assert "INVALID" in capsys.readouterr().err
