"""Tracing: disabled-cost contract, span mechanics, kernel profiler."""

from __future__ import annotations

import time

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with process-wide tracing disabled."""
    trace.disable_tracing()
    yield
    trace.disable_tracing()


class TestDisabledCost:
    def test_disabled_span_is_the_shared_noop_singleton(self):
        # Identity, not equality: a regression to per-call allocation on the
        # disabled path must fail loudly.
        assert trace.span("anything") is trace.NOOP_SPAN
        assert trace.span("anything", attr=1) is trace.NOOP_SPAN

    def test_bulk_disabled_spans_stay_cheap(self):
        start = time.perf_counter()
        for _ in range(100_000):
            with trace.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # ~3 attribute loads and a None check per call; even a slow CI box
        # does 100k in well under a second.  Generous bound, loud failure.
        assert elapsed < 1.0

    def test_disabled_event_records_nothing(self):
        trace.event("exec.retry", shard=0)  # must not raise, must not record
        assert not trace.is_enabled()


class TestSpans:
    def test_parentage_follows_the_stack(self):
        with trace.tracing() as tracer:
            with trace.span("outer") as outer:
                with trace.span("inner"):
                    pass
        spans = {r["name"]: r for r in tracer.records if r["type"] == "span"}
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["outer"]["parent"] is None

    def test_exception_marks_the_span_and_propagates(self):
        with trace.tracing() as tracer:
            with pytest.raises(ValueError):
                with trace.span("doomed"):
                    raise ValueError("boom")
        [record] = [r for r in tracer.records if r["type"] == "span"]
        assert record["error"] == "ValueError"

    def test_attrs_and_late_set(self):
        with trace.tracing() as tracer:
            with trace.span("s", fixed=1) as handle:
                handle.set(late=2)
        [record] = [r for r in tracer.records if r["type"] == "span"]
        assert record["attrs"] == {"fixed": 1, "late": 2}

    def test_adopt_marks_abandoned_without_mutating_source(self):
        foreign = [{"type": "span", "trace": "t", "span": "a-1",
                    "parent": None, "name": "exec.shard", "t0": 0.0,
                    "dur": 0.1, "pid": 1, "tid": 1}]
        with trace.tracing() as tracer:
            tracer.adopt(foreign, abandoned=True)
        adopted = [r for r in tracer.records if r.get("abandoned")]
        assert len(adopted) == 1
        assert "abandoned" not in foreign[0]

    def test_enable_twice_is_an_error(self):
        trace.enable_tracing()
        try:
            with pytest.raises(RuntimeError, match="already enabled"):
                trace.enable_tracing()
        finally:
            trace.disable_tracing()

    def test_last_span_name_tracks_entries(self):
        with trace.tracing():
            with trace.span("exec.shard"):
                pass
        assert trace.last_span_name() == "exec.shard"


class TestKernelProfiler:
    def test_reentrant_calls_count_once(self):
        registry = metrics.MetricsRegistry()
        profiler = trace.KernelProfiler()
        with metrics.use_registry(registry):
            outer = profiler.enter()
            inner = profiler.enter()  # a fallback calling the base kernel
            assert inner is None
            profiler.exit("matmul", outer)
        assert registry.histogram("nn.kernel.matmul").count == 1

    def test_sampling_records_every_nth(self):
        registry = metrics.MetricsRegistry()
        profiler = trace.KernelProfiler(sample_every=4)
        with metrics.use_registry(registry):
            recorded = 0
            for _ in range(16):
                token = profiler.enter()
                if token is not None:
                    profiler.exit("k", token)
                    recorded += 1
        assert recorded == 4
        assert registry.histogram("nn.kernel.k").count == 4

    def test_phase_channel_does_not_suppress_kernels(self):
        registry = metrics.MetricsRegistry()
        profiler = trace.KernelProfiler()
        with metrics.use_registry(registry):
            phase = profiler.phase_enter()
            token = profiler.enter()  # kernels inside a phase still record
            assert token is not None
            profiler.exit("k", token)
            profiler.phase_exit("realize", phase)
        assert registry.histogram("nn.kernel.k").count == 1
        assert registry.histogram("nn.phase.realize").count == 1

    def test_backend_hook_installed_and_cleared_with_tracing(self):
        pytest.importorskip("numpy")
        from repro.nn import backend as backend_mod

        assert backend_mod.KERNEL_PROFILER is None
        with trace.tracing():
            assert isinstance(backend_mod.KERNEL_PROFILER,
                              trace.KernelProfiler)
        assert backend_mod.KERNEL_PROFILER is None
